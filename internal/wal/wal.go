package wal

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"

	"causalshare/internal/message"
	"causalshare/internal/telemetry"
)

// Policy selects when appended records reach stable storage.
type Policy int

const (
	// PolicyInterval (the default) group-commits: appends buffer in
	// memory and a background loop flushes and fsyncs every
	// Options.Interval. A crash loses at most one interval of records.
	PolicyInterval Policy = iota
	// PolicyEach flushes and fsyncs every record before the append
	// returns — the strongest guarantee and the slowest path.
	PolicyEach
	// PolicyAsync flushes on the interval but never fsyncs outside
	// segment rotation and Close: the OS (or the MemFS volatile buffer)
	// owns durability. Cheapest, and the only mode the fan-out alloc
	// budget is gated on; a crash loses the unsynced tail, which recovery
	// repairs from a live peer.
	PolicyAsync
)

func (p Policy) String() string {
	switch p {
	case PolicyInterval:
		return "interval"
	case PolicyEach:
		return "each"
	case PolicyAsync:
		return "async"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy maps the flag spellings ("each", "interval", "async") back
// to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "interval", "group", "group-commit":
		return PolicyInterval, nil
	case "each", "record", "per-record":
		return PolicyEach, nil
	case "async":
		return PolicyAsync, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (want each, interval, or async)", s)
	}
}

// Options parameterizes a log.
type Options struct {
	// Dir is the directory segments live in; one directory per member.
	Dir string
	// FS is the filesystem; nil selects the real one (OSFS).
	FS FS
	// SegmentBytes is the rotation threshold; a flush that would push the
	// active segment past it opens a fresh segment first. Records never
	// split across segments. Zero selects DefaultSegmentBytes.
	SegmentBytes int
	// Policy is the sync policy (see the constants).
	Policy Policy
	// Interval is the flush (and, under PolicyInterval, fsync) cadence of
	// the background loop. Zero selects DefaultInterval. Ignored by
	// PolicyEach.
	Interval time.Duration
	// Telemetry, when non-nil, registers the wal_* instruments there.
	Telemetry *telemetry.Registry
}

// DefaultSegmentBytes is the rotation threshold when Options.SegmentBytes
// is zero.
const DefaultSegmentBytes = 4 << 20

// DefaultInterval is the flush cadence when Options.Interval is zero.
const DefaultInterval = 2 * time.Millisecond

// WAL is one member's append-only journal. All journaling methods are
// safe on a nil receiver (they no-op), so layers embed their hook calls
// unconditionally, and safe for concurrent use. Append failures (a full
// or failing disk) degrade the log — recorded in wal_append_errors_total
// and Err — rather than failing the caller: durability is best-effort
// below the protocol, and a restart with a short log just leans harder
// on the peer-sync fallback.
type WAL struct {
	opts Options
	ins  walInstruments

	mu       sync.Mutex
	closed   bool
	seg      File
	segIndex int
	segCount int
	segBytes int
	// buf holds framed records not yet written to seg; scratch assembles
	// one record payload. Both are reused, so the steady-state append
	// path allocates nothing.
	buf     []byte
	scratch []byte
	dirty   bool // bytes written to seg since its last fsync
	err     error

	done     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// Open creates (or extends) the log in opts.Dir and starts the flush
// loop appropriate for the policy. Existing segments are left untouched;
// appends go to a fresh segment above them. Use Recover to replay
// existing segments first.
func Open(opts Options) (*WAL, error) {
	w, _, err := open(opts, newWALInstruments(opts.Telemetry), 0)
	return w, err
}

func open(opts Options, ins walInstruments, nextIndex int) (*WAL, int, error) {
	if opts.FS == nil {
		opts.FS = OSFS{}
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.Interval <= 0 {
		opts.Interval = DefaultInterval
	}
	if err := opts.FS.MkdirAll(opts.Dir); err != nil {
		return nil, 0, fmt.Errorf("wal: mkdir %s: %w", opts.Dir, err)
	}
	names, err := opts.FS.List(opts.Dir)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: list %s: %w", opts.Dir, err)
	}
	segs := segmentIndexes(names)
	count := len(segs)
	if len(segs) > 0 && segs[len(segs)-1] >= nextIndex {
		nextIndex = segs[len(segs)-1] + 1
	}
	w := &WAL{
		opts:     opts,
		ins:      ins,
		segIndex: nextIndex,
		segCount: count,
		done:     make(chan struct{}),
	}
	if err := w.openSegmentLocked(); err != nil {
		return nil, 0, err
	}
	if opts.Policy != PolicyEach {
		w.wg.Add(1)
		go w.flushLoop()
	}
	return w, count, nil
}

// segmentName renders one segment's base name; lexical order is segment
// order.
func segmentName(index int) string { return fmt.Sprintf("%08d.wal", index) }

// segmentIndexes extracts the sorted segment numbers from a directory
// listing, ignoring foreign files.
func segmentIndexes(names []string) []int {
	var out []int
	for _, n := range names {
		var idx int
		if _, err := fmt.Sscanf(n, "%08d.wal", &idx); err == nil && segmentName(idx) == n {
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out
}

// openSegmentLocked creates the next segment and writes its magic.
func (w *WAL) openSegmentLocked() error {
	name := w.opts.Dir + "/" + segmentName(w.segIndex)
	f, err := w.opts.FS.Create(name)
	if err != nil {
		return fmt.Errorf("wal: create %s: %w", name, err)
	}
	if _, err := f.Write([]byte(Magic)); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: write magic %s: %w", name, err)
	}
	w.seg = f
	w.segIndex++
	w.segCount++
	w.segBytes = len(Magic)
	w.dirty = true
	w.ins.segments.Set(int64(w.segCount))
	w.ins.segmentBytes.Set(int64(w.segBytes))
	return nil
}

// append frames one record into the buffer and applies the sync policy.
func (w *WAL) append(kind Kind, payload []byte) {
	t0 := time.Now()
	w.buf = appendRecord(w.buf, kind, payload)
	w.ins.appends.Inc()
	w.ins.appendBytes.Add(uint64(recordHeader + len(payload)))
	if w.opts.Policy == PolicyEach {
		w.flushLocked()
		w.syncLocked()
	}
	w.ins.appendLat.ObserveSince(t0)
}

// flushLocked writes the buffered records to the active segment,
// rotating first when they would overflow it. Caller holds mu.
func (w *WAL) flushLocked() {
	if len(w.buf) == 0 || w.err != nil {
		return
	}
	if w.segBytes+len(w.buf) > w.opts.SegmentBytes && w.segBytes > len(Magic) {
		w.syncLocked()
		_ = w.seg.Close()
		if err := w.openSegmentLocked(); err != nil {
			w.err = err
			w.ins.appendErrors.Inc()
			return
		}
	}
	n, err := w.seg.Write(w.buf)
	w.segBytes += n
	w.ins.segmentBytes.Set(int64(w.segBytes))
	w.buf = w.buf[:0]
	w.dirty = true
	if err != nil {
		// A partial write leaves a torn record at the segment tail;
		// recovery truncates it. The log goes degraded: further appends
		// are dropped (and counted) rather than stacked behind a dead disk.
		w.err = fmt.Errorf("wal: segment write: %w", err)
		w.ins.appendErrors.Inc()
	}
}

// syncLocked fsyncs the active segment if it has unflushed bytes. Caller
// holds mu.
func (w *WAL) syncLocked() {
	if !w.dirty || w.seg == nil {
		return
	}
	t0 := time.Now()
	err := w.seg.Sync()
	w.ins.syncs.Inc()
	w.ins.syncLat.ObserveSince(t0)
	if err != nil {
		// Failed fsync: those bytes may not survive a crash. The log keeps
		// appending — durability is degraded, not correctness — and the
		// counter is the operator's signal.
		w.ins.syncErrors.Inc()
	}
	w.dirty = false
}

func (w *WAL) flushLoop() {
	defer w.wg.Done()
	ticker := time.NewTicker(w.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-w.done:
			return
		case <-ticker.C:
			w.mu.Lock()
			if !w.closed {
				w.flushLocked()
				if w.opts.Policy == PolicyInterval {
					w.syncLocked()
				}
			}
			w.mu.Unlock()
		}
	}
}

// Message journals a broadcast payload (the sequencer's holdback entry).
func (w *WAL) Message(m *message.Message) {
	if w == nil {
		return
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	p, err := m.AppendBinary(w.scratch[:0])
	if err != nil {
		w.ins.appendErrors.Inc()
		w.mu.Unlock()
		return
	}
	w.scratch = p[:0]
	w.append(KindMessage, p)
	w.mu.Unlock()
}

// Deliver journals one causal delivery.
func (w *WAL) Deliver(l message.Label) {
	if w == nil {
		return
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	p := appendLabel(w.scratch[:0], l)
	w.scratch = p[:0]
	w.append(KindDeliver, p)
	w.mu.Unlock()
}

// Epoch journals a sequencer epoch adoption.
func (w *WAL) Epoch(epoch uint64) {
	if w == nil {
		return
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	p := binary.AppendUvarint(w.scratch[:0], epoch)
	w.scratch = p[:0]
	w.append(KindEpoch, p)
	w.mu.Unlock()
}

// Order journals one sequence assignment.
func (w *WAL) Order(epoch, seq uint64, l message.Label) {
	if w == nil {
		return
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	p := binary.AppendUvarint(w.scratch[:0], epoch)
	p = binary.AppendUvarint(p, seq)
	p = appendLabel(p, l)
	w.scratch = p[:0]
	w.append(KindOrder, p)
	w.mu.Unlock()
}

// Commit journals the sequencer's delivery frontier advancing to
// nextDeliver.
func (w *WAL) Commit(nextDeliver uint64) {
	if w == nil {
		return
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	p := binary.AppendUvarint(w.scratch[:0], nextDeliver)
	w.scratch = p[:0]
	w.append(KindCommit, p)
	w.mu.Unlock()
}

// Member journals a membership verdict.
func (w *WAL) Member(peer string, down bool) {
	if w == nil {
		return
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	p := w.scratch[:0]
	if down {
		p = append(p, 1)
	} else {
		p = append(p, 0)
	}
	p = append(p, peer...)
	w.scratch = p[:0]
	w.append(KindMember, p)
	w.mu.Unlock()
}

// Frontier journals a delivered-watermark checkpoint. Unlike the hot-path
// hooks it allocates (the map is sorted for determinism); it runs once
// per incarnation, not per message.
func (w *WAL) Frontier(wm map[string]uint64) {
	if w == nil {
		return
	}
	origins := make([]string, 0, len(wm))
	for o := range wm {
		origins = append(origins, o)
	}
	sort.Strings(origins)
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	p := binary.AppendUvarint(w.scratch[:0], uint64(len(origins)))
	for _, o := range origins {
		p = appendLabel(p, message.Label{Origin: o, Seq: wm[o]})
	}
	w.scratch = p[:0]
	w.append(KindFrontier, p)
	w.mu.Unlock()
}

// WriteCheckpoint journals a full recovered (or peer-adopted) state as a
// baseline — frontier, epoch, retained assignments, pending payloads,
// and the commit frontier, in that order — then forces it to stable
// storage regardless of policy. A rejoined incarnation writes one before
// journaling new traffic, so a later restart-from-disk replays on top of
// the state the incarnation actually started from.
func (w *WAL) WriteCheckpoint(st Recovered) error {
	if w == nil {
		return nil
	}
	w.Frontier(st.Frontier)
	if st.Epoch > 0 {
		w.Epoch(st.Epoch)
	}
	for _, a := range st.Assigns {
		w.Order(a.Epoch, a.Seq, a.Label)
	}
	for i := range st.Pending {
		w.Message(&st.Pending[i])
	}
	if st.NextDeliver > 1 {
		w.Commit(st.NextDeliver)
	}
	return w.Sync()
}

// Sync flushes buffered records and fsyncs the active segment, whatever
// the policy.
func (w *WAL) Sync() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.flushLocked()
	w.syncLocked()
	return w.err
}

// Err returns the sticky degraded-mode error (nil while healthy).
func (w *WAL) Err() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Close flushes, fsyncs, and closes the active segment.
// Kill seals the log the way a process death would: the flusher stops,
// further appends are dropped, and — unlike Close — nothing buffered is
// flushed or synced. Whatever the OS (or the fault-injecting FS) had
// already made durable is exactly what a later Recover sees. The chaos
// harness calls this at the crash instant so the crash point, not the
// rejoin time, decides how much tail is lost.
func (w *WAL) Kill() {
	if w == nil {
		return
	}
	w.stopOnce.Do(func() { close(w.done) })
	w.wg.Wait()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	w.closed = true
	if w.seg != nil {
		_ = w.seg.Close()
		w.seg = nil
	}
}

func (w *WAL) Close() error {
	if w == nil {
		return nil
	}
	w.stopOnce.Do(func() { close(w.done) })
	w.wg.Wait()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return w.err
	}
	w.flushLocked()
	w.syncLocked()
	w.closed = true
	if w.seg != nil {
		_ = w.seg.Close()
		w.seg = nil
	}
	return w.err
}
