package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"sort"

	"causalshare/internal/message"
)

// Magic heads every segment file. The byte format behind it is frozen:
// the golden byte-compat test pins it, and any incompatible change must
// bump the version string so old segments are rejected loudly instead of
// misparsed.
const Magic = "causalshare-wal/v1"

// Decode/scan failure modes. A scan distinguishes a torn tail (expected
// after a crash — truncate and continue) from nothing at all; both
// terminate replay at the last good record.
var (
	ErrBadMagic  = errors.New("wal: bad segment magic")
	ErrTruncated = errors.New("wal: truncated record")
	ErrCorrupt   = errors.New("wal: corrupt record")
	ErrChecksum  = errors.New("wal: record checksum mismatch")
)

// Kind tags a record. New kinds append; existing values never change
// (the format is versioned by Magic, not by kind renumbering).
type Kind uint8

const (
	// KindMessage journals a full broadcast payload (the message wire
	// encoding): the sequencer's holdback entry for a causally-delivered,
	// not-yet-released data message.
	KindMessage Kind = 1
	// KindDeliver journals one causal delivery (label only); replaying
	// these rebuilds the delivered-watermark frontier and the label chain.
	KindDeliver Kind = 2
	// KindEpoch journals a sequencer epoch adoption.
	KindEpoch Kind = 3
	// KindOrder journals one sequence assignment (epoch, seq, label).
	KindOrder Kind = 4
	// KindCommit journals the sequencer's delivery frontier advancing to
	// Seq (the new nextDeliver).
	KindCommit Kind = 5
	// KindMember journals a membership verdict (peer marked down or up).
	KindMember Kind = 6
	// KindFrontier journals a delivered-watermark checkpoint: the baseline
	// replay starts from, written at the head of a rejoined incarnation's
	// log so state adopted from a peer snapshot is durable too.
	KindFrontier Kind = 7
)

func (k Kind) String() string {
	switch k {
	case KindMessage:
		return "message"
	case KindDeliver:
		return "deliver"
	case KindEpoch:
		return "epoch"
	case KindOrder:
		return "order"
	case KindCommit:
		return "commit"
	case KindMember:
		return "member"
	case KindFrontier:
		return "frontier"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Record is one decoded log entry. Which fields are meaningful depends on
// Kind; the rest are zero.
type Record struct {
	Kind  Kind
	Label message.Label // Deliver, Order
	Epoch uint64        // Epoch, Order
	Seq   uint64        // Order (assigned seq), Commit (new nextDeliver)
	Peer  string        // Member
	Down  bool          // Member
	// Frontier holds the checkpoint watermarks as (Origin, Seq) labels in
	// origin order.
	Frontier []message.Label // Frontier
	// Msg is the journaled payload (Message records only).
	Msg message.Message
}

// Record layout, after the segment's magic prefix:
//
//	crc32c  uint32 LE  over the length, kind, and payload bytes
//	length  uint32 LE  payload byte count (kind byte excluded)
//	kind    uint8
//	payload length bytes
//
// The checksum covers the length field so a bit flip there cannot send
// the scanner off into the weeds, and it leads the record so a torn
// header is indistinguishable from a torn payload: both fail the check
// and truncate the replay at the previous record.
const recordHeader = 4 + 4 + 1

// maxRecordPayload bounds one record; anything larger is corruption, not
// data (broadcast payloads are small and frontier checkpoints are one
// entry per group member).
const maxRecordPayload = 1 << 24

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendLabel appends a label's wire form: uvarint origin length, origin
// bytes, uvarint seq.
func appendLabel(buf []byte, l message.Label) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(l.Origin)))
	buf = append(buf, l.Origin...)
	return binary.AppendUvarint(buf, l.Seq)
}

// appendRecord appends the framed record (header + payload) to buf. The
// header is assembled in place inside buf — a local header array would be
// moved to the heap (crc32.Update defeats escape analysis), costing one
// allocation per append on the hot path.
func appendRecord(buf []byte, kind Kind, payload []byte) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // crc, filled in below
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, byte(kind))
	buf = append(buf, payload...)
	crc := crc32.Update(0, crcTable, buf[start+4:])
	binary.LittleEndian.PutUint32(buf[start:start+4], crc)
	return buf
}

// ScanSegment walks data (a whole segment, magic included), invoking fn
// for every valid record in order. It returns the byte offset of the end
// of the last fully-valid record — the truncation point recovery keeps —
// and the error that stopped the scan (nil when the segment was consumed
// exactly). fn's error aborts the scan and is returned verbatim.
//
// The scanner never panics on arbitrary input; FuzzWALDecode enforces it.
func ScanSegment(data []byte, fn func(Record) error) (int, error) {
	if len(data) < len(Magic) {
		return 0, ErrBadMagic
	}
	if string(data[:len(Magic)]) != Magic {
		return 0, ErrBadMagic
	}
	dec := message.NewDecoder()
	off := len(Magic)
	for off < len(data) {
		rest := data[off:]
		if len(rest) < recordHeader {
			return off, fmt.Errorf("%w: %d header bytes", ErrTruncated, len(rest))
		}
		wantCRC := binary.LittleEndian.Uint32(rest[0:4])
		plen := binary.LittleEndian.Uint32(rest[4:8])
		if plen > maxRecordPayload {
			return off, fmt.Errorf("%w: payload length %d", ErrCorrupt, plen)
		}
		if len(rest) < recordHeader+int(plen) {
			return off, fmt.Errorf("%w: %d of %d payload bytes", ErrTruncated, len(rest)-recordHeader, plen)
		}
		crc := crc32.Update(0, crcTable, rest[4:9])
		crc = crc32.Update(crc, crcTable, rest[recordHeader:recordHeader+int(plen)])
		if crc != wantCRC {
			return off, ErrChecksum
		}
		rec, err := decodePayload(dec, Kind(rest[8]), rest[recordHeader:recordHeader+int(plen)])
		if err != nil {
			return off, err
		}
		if err := fn(rec); err != nil {
			return off, err
		}
		off += recordHeader + int(plen)
	}
	return off, nil
}

// decodePayload parses one checksummed payload into a Record. A checksum
// already vouched for the bytes, so a parse failure here means an
// encoder/decoder mismatch, reported as corruption (and reachable by the
// fuzzer, which can forge valid checksums over garbage).
func decodePayload(dec *message.Decoder, kind Kind, p []byte) (Record, error) {
	rec := Record{Kind: kind}
	switch kind {
	case KindMessage:
		if err := dec.Decode(&rec.Msg, p); err != nil {
			return rec, fmt.Errorf("%w: message payload: %v", ErrCorrupt, err)
		}
	case KindDeliver:
		l, rest, err := readLabel(p)
		if err != nil || len(rest) != 0 {
			return rec, fmt.Errorf("%w: deliver payload", ErrCorrupt)
		}
		rec.Label = l
	case KindEpoch:
		e, rest, err := readUvarint(p)
		if err != nil || len(rest) != 0 {
			return rec, fmt.Errorf("%w: epoch payload", ErrCorrupt)
		}
		rec.Epoch = e
	case KindOrder:
		e, rest, err := readUvarint(p)
		if err != nil {
			return rec, fmt.Errorf("%w: order epoch", ErrCorrupt)
		}
		s, rest, err := readUvarint(rest)
		if err != nil {
			return rec, fmt.Errorf("%w: order seq", ErrCorrupt)
		}
		l, rest, err := readLabel(rest)
		if err != nil || len(rest) != 0 {
			return rec, fmt.Errorf("%w: order label", ErrCorrupt)
		}
		rec.Epoch, rec.Seq, rec.Label = e, s, l
	case KindCommit:
		s, rest, err := readUvarint(p)
		if err != nil || len(rest) != 0 {
			return rec, fmt.Errorf("%w: commit payload", ErrCorrupt)
		}
		rec.Seq = s
	case KindMember:
		if len(p) < 1 {
			return rec, fmt.Errorf("%w: member payload", ErrCorrupt)
		}
		switch p[0] {
		case 0:
			rec.Down = false
		case 1:
			rec.Down = true
		default:
			return rec, fmt.Errorf("%w: member verdict %d", ErrCorrupt, p[0])
		}
		rec.Peer = string(p[1:])
	case KindFrontier:
		n, rest, err := readUvarint(p)
		if err != nil || n > maxRecordPayload/2 {
			return rec, fmt.Errorf("%w: frontier count", ErrCorrupt)
		}
		rec.Frontier = make([]message.Label, 0, n)
		for i := uint64(0); i < n; i++ {
			var l message.Label
			l, rest, err = readLabel(rest)
			if err != nil {
				return rec, fmt.Errorf("%w: frontier entry %d", ErrCorrupt, i)
			}
			rec.Frontier = append(rec.Frontier, l)
		}
		if len(rest) != 0 {
			return rec, fmt.Errorf("%w: frontier trailer", ErrCorrupt)
		}
	default:
		return rec, fmt.Errorf("%w: unknown record kind %d", ErrCorrupt, kind)
	}
	return rec, nil
}

func readUvarint(p []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, ErrCorrupt
	}
	return v, p[n:], nil
}

func readLabel(p []byte) (message.Label, []byte, error) {
	n, rest, err := readUvarint(p)
	if err != nil || n > uint64(len(rest)) {
		return message.Label{}, nil, ErrCorrupt
	}
	l := message.Label{Origin: string(rest[:n])}
	l.Seq, rest, err = readUvarint(rest[n:])
	if err != nil {
		return message.Label{}, nil, ErrCorrupt
	}
	return l, rest, nil
}

// FrontierDigest hashes a delivered-watermark map deterministically
// (origins in sorted order, FNV-64a over the labels' wire form). Two
// members whose frontiers digest equal hold byte-identical watermark
// maps — the restart figure's recovery fidelity check.
func FrontierDigest(wm map[string]uint64) uint64 {
	origins := make([]string, 0, len(wm))
	for o := range wm {
		origins = append(origins, o)
	}
	sort.Strings(origins)
	h := fnv.New64a()
	var buf []byte
	for _, o := range origins {
		buf = appendLabel(buf[:0], message.Label{Origin: o, Seq: wm[o]})
		_, _ = h.Write(buf)
	}
	return h.Sum64()
}
