package wal

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// The torture suite's prefix-consistency contract: a journal of the
// chain deliver(m,1), deliver(m,2), ... deliver(m,N) must, after ANY
// crash or disk fault, recover to frontier[m] = f for some f ≤ N with
// every record below f intact — never a gap, never an invented record,
// never a panic or replay error. Sync-policy floors tighten the bound:
// under PolicyEach every append that returned must survive a clean
// (non-lying, non-torn) crash.

const tortureOrigin = "m"

// tortureAppend journals the i-th chain record.
func tortureAppend(w *WAL, i uint64) { w.Deliver(lbl(tortureOrigin, i)) }

// checkPrefix asserts the recovered frontier is a clean prefix of the n
// appended records, within [floor, n].
func checkPrefix(t *testing.T, rec *Recovered, n, floor uint64, ctx string) {
	t.Helper()
	f := rec.Frontier[tortureOrigin]
	if f > n {
		t.Fatalf("%s: recovered %d records, only %d were written", ctx, f, n)
	}
	if f < floor {
		t.Fatalf("%s: recovered %d records, sync policy guarantees %d", ctx, f, floor)
	}
	if len(rec.Frontier) > 1 {
		t.Fatalf("%s: invented origins: %v", ctx, rec.Frontier)
	}
}

// recoverTwice recovers, then recovers again, asserting the second pass
// sees the identical state with no further truncation: recovery must be
// idempotent or a crash during recovery would compound damage.
func recoverTwice(t *testing.T, opts Options, ctx string) *Recovered {
	t.Helper()
	rec, w, err := Recover(opts)
	if err != nil {
		t.Fatalf("%s: first recovery: %v", ctx, err)
	}
	_ = w.Close()
	rec2, w2, err := Recover(opts)
	if err != nil {
		t.Fatalf("%s: second recovery: %v", ctx, err)
	}
	_ = w2.Close()
	if rec2.Frontier[tortureOrigin] < rec.Frontier[tortureOrigin] {
		t.Fatalf("%s: second recovery lost records: %d then %d",
			ctx, rec.Frontier[tortureOrigin], rec2.Frontier[tortureOrigin])
	}
	return rec
}

// TestTortureCrashPoints crashes after every single append, under every
// sync policy, and requires a clean prefix each time.
func TestTortureCrashPoints(t *testing.T) {
	const n = 24
	for _, policy := range []Policy{PolicyEach, PolicyInterval, PolicyAsync} {
		for crashAt := uint64(1); crashAt <= n; crashAt++ {
			ctx := fmt.Sprintf("policy=%v crash-after=%d", policy, crashAt)
			fs := NewMemFS(int64(crashAt), Faults{})
			opts := Options{Dir: "/w", FS: fs, Policy: policy, Interval: time.Hour, SegmentBytes: 128}
			w, err := Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			for i := uint64(1); i <= crashAt; i++ {
				tortureAppend(w, i)
			}
			fs.Crash()
			var floor uint64
			if policy == PolicyEach {
				floor = crashAt // every append was fsynced before returning
			}
			rec := recoverTwice(t, opts, ctx)
			checkPrefix(t, rec, crashAt, floor, ctx)
			_ = w.Close()
		}
	}
}

// TestTortureTornWrites lets every crash tear the unsynced tail at a
// random byte boundary — mid-header, mid-payload, mid-checksum — across
// many seeds.
func TestTortureTornWrites(t *testing.T) {
	const n = 40
	for seed := int64(1); seed <= 50; seed++ {
		ctx := fmt.Sprintf("seed=%d", seed)
		fs := NewMemFS(seed, Faults{TornWrites: true})
		opts := Options{Dir: "/w", FS: fs, Policy: PolicyAsync, Interval: time.Millisecond, SegmentBytes: 256}
		w, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(1); i <= n; i++ {
			tortureAppend(w, i)
			if i%9 == 0 {
				_ = w.Sync()
			}
		}
		fs.Crash()
		rec := recoverTwice(t, opts, ctx)
		// The i%9 syncs guarantee at least the last explicit barrier.
		checkPrefix(t, rec, n, (n/9)*9, ctx)
		_ = w.Close()
	}
}

// TestTortureBitFlips flips every byte of a sealed log (one bit each, a
// few bit positions) and requires recovery to keep exactly the records
// before the damaged one.
func TestTortureBitFlips(t *testing.T) {
	const n = 12
	// Build one reference log to learn its size, then rebuild fresh for
	// every flip position (a flip is permanent on MemFS).
	build := func() (*MemFS, Options) {
		fs := NewMemFS(7, Faults{})
		opts := Options{Dir: "/w", FS: fs, Policy: PolicyEach}
		w, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(1); i <= n; i++ {
			tortureAppend(w, i)
		}
		_ = w.Close()
		return fs, opts
	}
	fs0, _ := build()
	names, _ := fs0.List("/w")
	if len(names) != 1 {
		t.Fatalf("expected one segment, got %v", names)
	}
	seg := "/w/" + names[0]
	size := int(fs0.Size(seg))
	for off := 0; off < size; off++ {
		for _, bit := range []uint{0, 7} {
			ctx := fmt.Sprintf("flip byte %d bit %d", off, bit)
			fs, opts := build()
			if err := fs.FlipBit(seg, off, bit); err != nil {
				t.Fatal(err)
			}
			rec, w, err := Recover(opts)
			if err != nil {
				t.Fatalf("%s: %v", ctx, err)
			}
			_ = w.Close()
			checkPrefix(t, rec, n, 0, ctx)
			if !rec.Truncated && rec.Frontier[tortureOrigin] != n {
				t.Fatalf("%s: silently lost records: frontier=%d", ctx, rec.Frontier[tortureOrigin])
			}
		}
	}
}

// TestTortureBitFlipMidChain corrupts an EARLY segment of a multi-segment
// log: everything from the flipped record on — later segments included —
// must be dropped, because records after a corruption are unordered
// relative to the lost ones.
func TestTortureBitFlipMidChain(t *testing.T) {
	fs := NewMemFS(3, Faults{})
	opts := Options{Dir: "/w", FS: fs, Policy: PolicyEach, SegmentBytes: 200}
	w, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := uint64(1); i <= n; i++ {
		tortureAppend(w, i)
	}
	_ = w.Close()
	names, _ := fs.List("/w")
	if len(names) < 3 {
		t.Fatalf("need several segments, got %v", names)
	}
	// Flip a payload byte in the second segment.
	second := "/w/" + names[1]
	if err := fs.FlipBit(second, len(Magic)+recordHeader-1, 3); err != nil {
		t.Fatal(err)
	}
	rec := recoverTwice(t, opts, "mid-chain flip")
	if !rec.Truncated {
		t.Fatal("corruption not reported")
	}
	checkPrefix(t, rec, n, 0, "mid-chain flip")
	got := rec.Frontier[tortureOrigin]
	if got >= n {
		t.Fatalf("records past the corruption resurrected: frontier=%d", got)
	}
	// Later segments must be gone from disk, not just skipped. Recovery
	// reopens the log for appending, so segments after the corrupted one
	// may exist again — but only fresh (magic-only) ones.
	after, _ := fs.List("/w")
	for _, name := range after {
		if name > names[1] && fs.Size("/w/"+name) > int64(len(Magic)) {
			t.Fatalf("segment %s survived a mid-chain corruption before it", name)
		}
	}
}

// TestTortureShortReads recovers a healthy log through a reader that
// returns a few bytes at a time.
func TestTortureShortReads(t *testing.T) {
	fs := NewMemFS(5, Faults{})
	opts := Options{Dir: "/w", FS: fs, Policy: PolicyEach, SegmentBytes: 256}
	w, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	const n = 60
	for i := uint64(1); i <= n; i++ {
		tortureAppend(w, i)
	}
	_ = w.Close()
	fs.SetFaults(Faults{ShortReads: true})
	rec := recoverTwice(t, opts, "short reads")
	checkPrefix(t, rec, n, n, "short reads")
}

// TestTortureFsyncErrors: fsync failing must degrade durability, not
// correctness — appends continue, the error is counted, and a crash
// recovers a (possibly empty) clean prefix.
func TestTortureFsyncErrors(t *testing.T) {
	fs := NewMemFS(11, Faults{SyncErrors: true})
	opts := Options{Dir: "/w", FS: fs, Policy: PolicyEach}
	w, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := uint64(1); i <= n; i++ {
		tortureAppend(w, i)
	}
	if err := w.Sync(); err != nil && !errors.Is(err, ErrSyncFault) {
		t.Fatalf("sync error surfaced wrong: %v", err)
	}
	fs.Crash() // nothing was ever promoted durable
	// While fsync still fails, recovery must refuse to proceed rather
	// than leave a truncation it cannot make durable.
	if _, _, err := Recover(opts); !errors.Is(err, ErrSyncFault) {
		t.Fatalf("recovery with failing fsync: got %v, want ErrSyncFault", err)
	}
	fs.SetFaults(Faults{}) // the disk heals before the real restart
	rec := recoverTwice(t, opts, "fsync errors")
	checkPrefix(t, rec, n, 0, "fsync errors")
	if rec.Frontier[tortureOrigin] != 0 {
		t.Fatalf("failed fsyncs cannot have made records durable, got %d", rec.Frontier[tortureOrigin])
	}
	_ = w.Close()
}

// TestTortureFsyncLies: the firmware acks the flush without doing it. A
// crash then loses "durable" records — recovery must still produce a
// clean prefix (possibly empty), never an error or a gap.
func TestTortureFsyncLies(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		fs := NewMemFS(seed, Faults{SyncLies: true, TornWrites: true})
		opts := Options{Dir: "/w", FS: fs, Policy: PolicyEach, SegmentBytes: 256}
		w, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		const n = 30
		for i := uint64(1); i <= n; i++ {
			tortureAppend(w, i)
		}
		fs.Crash()
		ctx := fmt.Sprintf("fsync lies seed=%d", seed)
		rec := recoverTwice(t, opts, ctx)
		checkPrefix(t, rec, n, 0, ctx)
		_ = w.Close()
	}
}

// TestTortureENOSPC: a filling disk tears a record mid-write; recovery
// truncates it and the restarted log can append once space returns.
func TestTortureENOSPC(t *testing.T) {
	for _, budget := range []int64{24, 40, 64, 100, 200} {
		ctx := fmt.Sprintf("budget=%d", budget)
		fs := NewMemFS(budget, Faults{WriteBudget: budget})
		opts := Options{Dir: "/w", FS: fs, Policy: PolicyEach}
		w, err := Open(opts)
		if err != nil {
			// The budget could not even fit the segment magic — a full
			// disk at open is a hard error, which is the right answer.
			continue
		}
		const n = 20
		for i := uint64(1); i <= n; i++ {
			tortureAppend(w, i)
		}
		_ = w.Close()
		fs.SetFaults(Faults{}) // space freed before the restart
		rec := recoverTwice(t, opts, ctx)
		checkPrefix(t, rec, n, 0, ctx)
		// And the reopened log must accept appends again.
		_, w2, err := Recover(opts)
		if err != nil {
			t.Fatal(err)
		}
		tortureAppend(w2, n+1)
		if err := w2.Sync(); err != nil {
			t.Fatalf("%s: append after space freed: %v", ctx, err)
		}
		_ = w2.Close()
	}
}

// TestTortureCrashDuringRecovery: crash again immediately after a
// recovery that truncated — the truncation itself must have been synced,
// so the third recovery sees the same state.
func TestTortureCrashDuringRecovery(t *testing.T) {
	fs := NewMemFS(13, Faults{TornWrites: true})
	opts := Options{Dir: "/w", FS: fs, Policy: PolicyAsync, Interval: time.Hour}
	w, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	for i := uint64(1); i <= n; i++ {
		tortureAppend(w, i)
		if i == 15 {
			_ = w.Sync()
		}
	}
	fs.Crash() // tears the tail after record 15
	rec1, w1, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	_ = w1.Close()
	fs.Crash() // crash right after recovery
	rec2, w2, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	_ = w2.Close()
	if rec2.Frontier[tortureOrigin] != rec1.Frontier[tortureOrigin] {
		t.Fatalf("recovery state not crash-stable: %d then %d",
			rec1.Frontier[tortureOrigin], rec2.Frontier[tortureOrigin])
	}
	checkPrefix(t, rec2, n, 15, "crash during recovery")
	_ = w.Close()
}
