// Package wal is a segmented, CRC-checksummed append-only log giving a
// member a durable copy of its causal history: broadcast payloads,
// deliveries, sequencer assignments, epoch transitions, and membership
// events, enough to restart as its own prior incarnation from disk and
// pull only the missed suffix from a live peer (DESIGN.md §15).
//
// The package is a leaf dependency (message + telemetry only) so every
// layer above — the causal engines, the total-order sequencer, the chaos
// harness — can journal through it without import cycles. All journaling
// entry points are nil-safe on *WAL, matching the flightrec idiom:
// callers embed the hook calls unconditionally and a nil journal costs a
// pointer test.
package wal

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the filesystem surface the log runs on. OSFS is the real thing;
// MemFS is the fault-injecting shim the torture suite crashes on demand.
// The log only ever appends to the file it created last, truncates a
// recovered segment's torn tail, and reads whole segments back, so the
// surface is deliberately tiny.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// List returns the base names of the files in dir, sorted. A missing
	// dir is an empty listing, not an error.
	List(dir string) ([]string, error)
	// Open opens an existing file for reading and truncation.
	Open(name string) (File, error)
	// Create creates (or truncates) a file for writing.
	Create(name string) (File, error)
	// Remove deletes a file.
	Remove(name string) error
}

// File is one log segment's handle.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes written bytes to stable storage. What "stable" means is
	// the FS's business: OSFS fsyncs, MemFS promotes volatile bytes to
	// crash-surviving ones (unless configured to lie).
	Sync() error
	// Truncate discards everything past size bytes.
	Truncate(size int64) error
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OSFS) List(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (OSFS) Open(name string) (File, error) {
	return os.OpenFile(filepath.Clean(name), os.O_RDWR, 0o644)
}

func (OSFS) Create(name string) (File, error) {
	return os.OpenFile(filepath.Clean(name), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (OSFS) Remove(name string) error { return os.Remove(name) }
