// Package message defines the application-level messages M exchanged by
// entities of a distributed computation, and the explicit causal-ordering
// metadata the paper's OSend primitive attaches to them.
//
// A message carries:
//
//   - a globally unique Label (its node identity in the dependency graph),
//   - an OccursAfter predicate naming the labels it causally depends on
//     (the AND-dependency of relation (3) in the paper: Msg may be
//     processed only after m1 ∧ m2 ∧ ...),
//   - an operation Kind (commutative / non-commutative / read / control),
//     which the consistency layer uses to recognize causal activities and
//     stable points, and
//   - an opaque payload interpreted by the application's state-transition
//     function.
//
// The package also provides a compact, deterministic binary codec used by
// the transport substrate and by the wire-overhead experiment (E7).
package message

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// Label identifies a message uniquely across the whole computation. The
// paper's front-end managers generate labels of the form (origin, sequence);
// concatenating the originating entity's id with a local sequence number
// guarantees global uniqueness without coordination.
type Label struct {
	// Origin is the id of the entity that generated the message.
	Origin string
	// Seq is the origin-local sequence number, starting at 1.
	Seq uint64
}

// Nil is the zero Label; OccursAfter(Nil) corresponds to the paper's
// OccursAfter(NULL) — no ordering constraint.
var Nil Label

// IsNil reports whether l is the null label.
func (l Label) IsNil() bool { return l == Nil }

// String renders the label as origin#seq.
func (l Label) String() string {
	if l.IsNil() {
		return "∅"
	}
	return fmt.Sprintf("%s#%d", l.Origin, l.Seq)
}

// Less orders labels deterministically (origin, then seq). All members sort
// label sets identically, which the total-order layer depends on.
func (l Label) Less(o Label) bool {
	if l.Origin != o.Origin {
		return l.Origin < o.Origin
	}
	return l.Seq < o.Seq
}

// Kind classifies an operation with respect to the shared data, which is
// the information the paper's generic access protocol (§6) embeds in the
// causal order.
type Kind int

const (
	// KindCommutative marks operations whose linearizations are
	// transition-preserving (inc/dec in the paper's running example):
	// replicas may process a set of them in any order.
	KindCommutative Kind = iota + 1
	// KindNonCommutative marks operations that close a causal activity and
	// constitute stable points (the paper's rqst_nc).
	KindNonCommutative
	// KindRead marks read operations; under deferred-read consistency a
	// replica answers them only at the next stable point.
	KindRead
	// KindControl marks protocol-internal messages (membership, lock
	// transfer advice, acknowledgements).
	KindControl
)

var kindNames = map[Kind]string{
	KindCommutative:    "commutative",
	KindNonCommutative: "non-commutative",
	KindRead:           "read",
	KindControl:        "control",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Valid reports whether k is one of the defined kinds.
func (k Kind) Valid() bool {
	_, ok := kindNames[k]
	return ok
}

// OccursAfter is the ordering predicate of the OSend primitive: the
// conjunction (AND) of labels that must all have been processed locally
// before the carrying message may be processed. An empty predicate is the
// paper's OccursAfter(NULL).
type OccursAfter struct {
	deps []Label
}

// After constructs a predicate from the given labels. Nil labels are
// dropped, duplicates collapse, and the result is kept sorted so equal
// predicates have equal representations.
func After(labels ...Label) OccursAfter {
	if len(labels) == 0 {
		return OccursAfter{}
	}
	deps := make([]Label, 0, len(labels))
	// Predicates are small (a handful of predecessors); insertion with a
	// linear dedup scan avoids the map a set-based build would allocate.
	for _, l := range labels {
		if l.IsNil() {
			continue
		}
		i := sort.Search(len(deps), func(i int) bool { return !deps[i].Less(l) })
		if i < len(deps) && deps[i] == l {
			continue
		}
		deps = append(deps, Label{})
		copy(deps[i+1:], deps[i:])
		deps[i] = l
	}
	if len(deps) == 0 {
		return OccursAfter{}
	}
	return OccursAfter{deps: deps}
}

// afterSorted wraps an already sorted, deduplicated, nil-free label slice
// without copying. The decoder uses it for wire data that is canonical by
// construction; callers must verify sortedness first.
func afterSorted(deps []Label) OccursAfter { return OccursAfter{deps: deps} }

// Unconstrained is the empty predicate, OccursAfter(NULL).
func Unconstrained() OccursAfter { return OccursAfter{} }

// Empty reports whether the predicate names no dependencies.
func (p OccursAfter) Empty() bool { return len(p.deps) == 0 }

// Labels returns the dependency labels in deterministic order. The returned
// slice must not be mutated.
func (p OccursAfter) Labels() []Label { return p.deps }

// Len returns the number of dependencies.
func (p OccursAfter) Len() int { return len(p.deps) }

// Contains reports whether the predicate names l.
func (p OccursAfter) Contains(l Label) bool {
	i := sort.Search(len(p.deps), func(i int) bool { return !p.deps[i].Less(l) })
	return i < len(p.deps) && p.deps[i] == l
}

// SatisfiedBy reports whether every dependency is present in delivered,
// i.e. the carrying message is deliverable at a member whose delivered set
// is given.
func (p OccursAfter) SatisfiedBy(delivered func(Label) bool) bool {
	for _, d := range p.deps {
		if !delivered(d) {
			return false
		}
	}
	return true
}

// String renders the predicate as (a#1 ∧ b#2) or ∅.
func (p OccursAfter) String() string {
	if p.Empty() {
		return "∅"
	}
	parts := make([]string, len(p.deps))
	for i, d := range p.deps {
		parts[i] = d.String()
	}
	return "(" + strings.Join(parts, " ∧ ") + ")"
}

// Message is one application-level broadcast: payload plus the causal
// metadata OSend attaches. Messages are immutable once sent; the transport
// copies the struct by value and payloads by reference, so applications
// must not mutate payload bytes after sending.
type Message struct {
	// Label is the message's identity and graph node.
	Label Label
	// Deps is the OccursAfter predicate: all named labels must be
	// processed before this message.
	Deps OccursAfter
	// Kind classifies the operation for the consistency layer.
	Kind Kind
	// Op names the application operation (e.g. "inc", "rd", "upd").
	Op string
	// Body is the opaque application payload.
	Body []byte
	// Span is the optional causal-trace context. An invalid (zero) context
	// costs no wire bytes; a valid one rides in a trailer after the body,
	// so pre-trace decoders and encoders interoperate cleanly.
	Span SpanContext
	// SentAt is the origin's wall clock (unix nanoseconds) at broadcast
	// time, stamped by the engines so remote members can observe
	// send→deliver visibility latency. Zero means unstamped and costs no
	// wire bytes; like Span it rides in a length-skippable trailer, and it
	// is preserved verbatim across PC-cast forwarding and retransmission
	// (the origin's stamp, not the forwarder's).
	SentAt int64
}

// String renders a compact one-line description for traces.
func (m Message) String() string {
	return fmt.Sprintf("%s %s %q after %s", m.Label, m.Kind, m.Op, m.Deps)
}

// Validate checks structural well-formedness: a real label, a valid kind,
// and no self-dependency.
func (m Message) Validate() error {
	if m.Label.IsNil() {
		return fmt.Errorf("message: nil label")
	}
	if !m.Kind.Valid() {
		return fmt.Errorf("message %s: invalid kind %d", m.Label, int(m.Kind))
	}
	if m.Deps.Contains(m.Label) {
		return fmt.Errorf("message %s: depends on itself", m.Label)
	}
	return nil
}

// appendString appends a uvarint-length-prefixed string.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendLabel(buf []byte, l Label) []byte {
	buf = appendString(buf, l.Origin)
	return binary.AppendUvarint(buf, l.Seq)
}

// MarshalBinary encodes the message with the compact codec. Equal messages
// produce identical bytes. The buffer is sized exactly via EncodedSize, so
// encoding costs a single allocation.
func (m Message) MarshalBinary() ([]byte, error) {
	return m.AppendBinary(make([]byte, 0, m.EncodedSize()))
}

// AppendBinary appends the compact encoding of m to buf and returns the
// extended slice. It never reallocates when buf has EncodedSize() spare
// capacity, which lets callers encode into pooled or prefixed buffers.
func (m Message) AppendBinary(buf []byte) ([]byte, error) {
	buf = appendLabel(buf, m.Label)
	buf = binary.AppendUvarint(buf, uint64(m.Deps.Len()))
	for _, d := range m.Deps.Labels() {
		buf = appendLabel(buf, d)
	}
	buf = binary.AppendUvarint(buf, uint64(m.Kind))
	buf = appendString(buf, m.Op)
	buf = binary.AppendUvarint(buf, uint64(len(m.Body)))
	buf = append(buf, m.Body...)
	buf = appendSpanTrailer(buf, m.Span)
	return appendSentAtTrailer(buf, m.SentAt), nil
}

// UnmarshalBinary decodes a message encoded by MarshalBinary, replacing m.
// Engines with a long-lived receive loop should prefer Decoder.Decode,
// which additionally interns the recurring strings.
func (m *Message) UnmarshalBinary(data []byte) error {
	return decodeMessage(m, data, nil)
}

// uvarintLen returns the number of bytes binary.AppendUvarint emits for x.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// labelEncodedSize returns the wire size of one label.
func labelEncodedSize(l Label) int {
	return uvarintLen(uint64(len(l.Origin))) + len(l.Origin) + uvarintLen(l.Seq)
}

// EncodedSize returns the wire size of the predicate as MarshalBinary
// embeds it: the dependency count plus each encoded label. The causal
// engines use it to account ordering metadata without encoding anything.
func (p OccursAfter) EncodedSize() int {
	n := uvarintLen(uint64(len(p.deps)))
	for _, d := range p.deps {
		n += labelEncodedSize(d)
	}
	return n
}

// EncodedSize returns the number of bytes MarshalBinary would produce,
// computed arithmetically without encoding anything. The wire-overhead
// experiment (E7) compares it across ordering mechanisms, and MarshalBinary
// uses it to right-size its single allocation.
func (m Message) EncodedSize() int {
	n := labelEncodedSize(m.Label)
	n += m.Deps.EncodedSize()
	n += uvarintLen(uint64(m.Kind))
	n += uvarintLen(uint64(len(m.Op))) + len(m.Op)
	n += uvarintLen(uint64(len(m.Body))) + len(m.Body)
	n += m.Span.encodedSize()
	n += sentAtEncodedSize(m.SentAt)
	return n
}

// Labeler hands out monotonically increasing labels for one origin. It is
// not safe for concurrent use; each entity owns one.
type Labeler struct {
	origin string
	next   uint64
}

// NewLabeler returns a labeler for the given origin entity.
func NewLabeler(origin string) *Labeler {
	return &Labeler{origin: origin}
}

// Next returns a fresh label.
func (g *Labeler) Next() Label {
	g.next++
	return Label{Origin: g.origin, Seq: g.next}
}

// Last returns the most recently issued label, or Nil if none.
func (g *Labeler) Last() Label {
	if g.next == 0 {
		return Nil
	}
	return Label{Origin: g.origin, Seq: g.next}
}

// Resume fast-forwards the labeler so the next label is last+1. A member
// that crashed and rejoins must resume above the sequence its peers have
// already delivered for this origin, or every new label would be dropped
// as a duplicate; peers' delivered watermarks supply last. Resuming
// backwards is a no-op.
func (g *Labeler) Resume(last uint64) {
	if last > g.next {
		g.next = last
	}
}
