package message

import (
	"encoding/binary"
	"fmt"
)

// SpanContext is the compact causal-trace context a message carries on the
// wire: the activity's trace id plus the member that started the trace.
// Together with the message's own Label it names one span in the realized
// dependency DAG, so the per-message wire cost is O(1) — two uvarints and
// one short string — independent of the dependency count (vector-clock
// schemes pay O(n) here).
//
// The context rides in an optional trailer after the message body (see
// AppendBinary), so frames encoded by pre-trace builds decode unchanged and
// frames with a span decode on old builds that tolerate trailers.
type SpanContext struct {
	// TraceID identifies the causal activity; zero means untraced.
	TraceID uint64
	// Origin is the member that started the trace (the root span's member,
	// not necessarily this message's Label.Origin).
	Origin string
}

// Valid reports whether the context names a trace.
func (c SpanContext) Valid() bool { return c.TraceID != 0 }

// String renders the context as T<id>@origin, or ∅ when untraced.
func (c SpanContext) String() string {
	if !c.Valid() {
		return "∅"
	}
	return fmt.Sprintf("T%d@%s", c.TraceID, c.Origin)
}

// Trailer record tags. Each trailer record is [tag uvarint][len uvarint]
// [payload], so decoders skip tags they do not understand by length alone.
const (
	trailerSpan   = 1
	trailerSentAt = 2
)

// sentAtEncodedSize returns the wire size of the sent-at trailer record,
// zero when unstamped (so unstamped messages encode byte-identically to
// pre-observability builds).
func sentAtEncodedSize(sentAt int64) int {
	if sentAt == 0 {
		return 0
	}
	p := uvarintLen(uint64(sentAt))
	return uvarintLen(trailerSentAt) + uvarintLen(uint64(p)) + p
}

// appendSentAtTrailer appends the sent-at trailer record when stamped.
func appendSentAtTrailer(buf []byte, sentAt int64) []byte {
	if sentAt == 0 {
		return buf
	}
	buf = binary.AppendUvarint(buf, trailerSentAt)
	buf = binary.AppendUvarint(buf, uint64(uvarintLen(uint64(sentAt))))
	return binary.AppendUvarint(buf, uint64(sentAt))
}

// encodedSize returns the wire size of the span trailer record, zero when
// the context is invalid (untraced messages pay no trailer bytes at all,
// which keeps the encoding byte-identical to pre-trace builds).
func (c SpanContext) encodedSize() int {
	if !c.Valid() {
		return 0
	}
	p := spanPayloadSize(c)
	return uvarintLen(trailerSpan) + uvarintLen(uint64(p)) + p
}

func spanPayloadSize(c SpanContext) int {
	return uvarintLen(c.TraceID) + uvarintLen(uint64(len(c.Origin))) + len(c.Origin)
}

// appendSpanTrailer appends the span trailer record when the context is
// valid; otherwise it returns buf untouched.
func appendSpanTrailer(buf []byte, c SpanContext) []byte {
	if !c.Valid() {
		return buf
	}
	buf = binary.AppendUvarint(buf, trailerSpan)
	buf = binary.AppendUvarint(buf, uint64(spanPayloadSize(c)))
	buf = binary.AppendUvarint(buf, c.TraceID)
	return appendString(buf, c.Origin)
}

// decodeTrailers parses the optional trailer records that follow the body.
// Unknown tags are skipped by length — newer encoders may append fields old
// decoders have never heard of — and a duplicate or malformed span record
// is rejected outright. d may be nil.
func decodeTrailers(rest []byte, d *Decoder) (SpanContext, int64, error) {
	var span SpanContext
	var sentAt int64
	for len(rest) > 0 {
		tag, used := binary.Uvarint(rest)
		if used <= 0 {
			return SpanContext{}, 0, fmt.Errorf("message: truncated trailer tag")
		}
		rest = rest[used:]
		plen, used := binary.Uvarint(rest)
		if used <= 0 || uint64(len(rest)-used) < plen {
			return SpanContext{}, 0, fmt.Errorf("message: truncated trailer payload")
		}
		payload := rest[used : used+int(plen)]
		rest = rest[used+int(plen):]
		switch tag {
		case trailerSpan:
			if span.Valid() {
				return SpanContext{}, 0, fmt.Errorf("message: duplicate span trailer")
			}
			id, used := binary.Uvarint(payload)
			if used <= 0 || id == 0 {
				return SpanContext{}, 0, fmt.Errorf("message: invalid span trace id")
			}
			origin, tail, err := readStringIn(payload[used:], d)
			if err != nil {
				return SpanContext{}, 0, fmt.Errorf("message: span origin: %w", err)
			}
			if len(tail) != 0 {
				return SpanContext{}, 0, fmt.Errorf("message: %d stray span trailer bytes", len(tail))
			}
			span = SpanContext{TraceID: id, Origin: origin}
		case trailerSentAt:
			if sentAt != 0 {
				return SpanContext{}, 0, fmt.Errorf("message: duplicate sent-at trailer")
			}
			v, used := binary.Uvarint(payload)
			if used <= 0 || v == 0 || len(payload) != used {
				return SpanContext{}, 0, fmt.Errorf("message: invalid sent-at trailer")
			}
			sentAt = int64(v)
		default:
			// Unknown trailer: skipped. Future fields live here.
		}
	}
	return span, sentAt, nil
}
