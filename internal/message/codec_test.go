package message

import (
	"bytes"
	"testing"
	"testing/quick"
)

// TestPropEncodedSizeExact pins the arithmetic size computation to the
// codec: for generated messages, EncodedSize must equal the encoded length
// exactly, so MarshalBinary's single allocation is always right-sized.
func TestPropEncodedSizeExact(t *testing.T) {
	f := func(o1, s1, o2, s2, o3, s3 uint8, body []byte, op string) bool {
		m := Message{
			Label: propLabel(o1, s1),
			Deps:  After(propLabel(o2, s2), propLabel(o3, s3)),
			Kind:  KindNonCommutative,
			Op:    op,
			Body:  body,
		}
		data, err := m.MarshalBinary()
		if err != nil {
			return false
		}
		return m.EncodedSize() == len(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestEncodedSizeExactExtremes covers the sizes the quick generator rarely
// hits: multi-byte varints for sequence numbers, body lengths, and kinds.
func TestEncodedSizeExactExtremes(t *testing.T) {
	msgs := []Message{
		{Label: Label{"a", 1}, Kind: KindCommutative, Op: ""},
		{Label: Label{"a", 1 << 62}, Kind: KindControl, Op: "x"},
		{
			Label: Label{"origin-with-a-long-name", 128},
			Deps:  After(Label{"b", 127}, Label{"b", 128}, Label{"c", 1 << 40}),
			Kind:  KindRead,
			Op:    "rd",
			Body:  make([]byte, 300),
		},
	}
	for _, m := range msgs {
		data, err := m.MarshalBinary()
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if got, want := m.EncodedSize(), len(data); got != want {
			t.Errorf("%v: EncodedSize = %d, encoded length = %d", m, got, want)
		}
	}
}

// TestAppendBinaryInPlace checks AppendBinary extends a caller's buffer
// without reallocating when capacity suffices — the property the engines
// rely on to encode directly into pooled, tag-prefixed frames.
func TestAppendBinaryInPlace(t *testing.T) {
	m := Message{
		Label: Label{"a", 9},
		Deps:  After(Label{"b", 3}),
		Kind:  KindCommutative,
		Op:    "inc",
		Body:  []byte("payload"),
	}
	buf := make([]byte, 1, 1+m.EncodedSize())
	buf[0] = 0xAB // frame tag a caller would have written
	out, err := m.AppendBinary(buf)
	if err != nil {
		t.Fatal(err)
	}
	if &out[0] != &buf[0] {
		t.Error("AppendBinary reallocated despite sufficient capacity")
	}
	if out[0] != 0xAB {
		t.Error("AppendBinary clobbered the prefix")
	}
	want, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[1:], want) {
		t.Error("AppendBinary output differs from MarshalBinary")
	}
}

// TestDecoderMatchesUnmarshal checks Decode and UnmarshalBinary agree on
// every field.
func TestDecoderMatchesUnmarshal(t *testing.T) {
	msgs := []Message{
		{Label: Label{"a", 1}, Kind: KindCommutative, Op: "inc"},
		{
			Label: Label{"frontend~cli", 900},
			Deps:  After(Label{"a", 1}, Label{"b", 77}),
			Kind:  KindNonCommutative,
			Op:    "upd",
			Body:  []byte("key=value"),
		},
	}
	dec := NewDecoder()
	for _, m := range msgs {
		data, err := m.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var plain, pooled Message
		if err := plain.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		if err := dec.Decode(&pooled, data); err != nil {
			t.Fatal(err)
		}
		if pooled.Label != plain.Label || pooled.Kind != plain.Kind ||
			pooled.Op != plain.Op || !bytes.Equal(pooled.Body, plain.Body) ||
			pooled.Deps.String() != plain.Deps.String() {
			t.Errorf("Decode = %v, UnmarshalBinary = %v", pooled, plain)
		}
	}
}

// TestDecoderDoesNotAliasInput scribbles over the wire buffer after
// decoding; the message must be unaffected, since engines release pooled
// frames immediately after decode.
func TestDecoderDoesNotAliasInput(t *testing.T) {
	m := Message{
		Label: Label{"a", 2},
		Deps:  After(Label{"b", 1}),
		Kind:  KindCommutative,
		Op:    "inc",
		Body:  []byte("hello"),
	}
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder()
	var got Message
	if err := dec.Decode(&got, data); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		data[i] = 0xFF
	}
	if got.Label != m.Label || got.Op != m.Op || !bytes.Equal(got.Body, m.Body) ||
		got.Deps.String() != m.Deps.String() {
		t.Errorf("decoded message aliases its input buffer: %v", got)
	}
}

// TestDecoderSteadyStateAllocs pins the receive path's allocation budget:
// once the decoder's intern table is warm, a dependency-free empty-body
// message decodes with zero allocations, and each dependency-carrying
// message costs only its one dependency-slice allocation.
func TestDecoderSteadyStateAllocs(t *testing.T) {
	depFree := Message{Label: Label{"member-7", 42}, Kind: KindCommutative, Op: "inc"}
	data, err := depFree.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder()
	var out Message
	if err := dec.Decode(&out, data); err != nil { // warm the intern table
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(200, func() {
		if err := dec.Decode(&out, data); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("dep-free decode allocates %v times per op, want 0", got)
	}

	withDeps := depFree
	withDeps.Deps = After(Label{"member-3", 41})
	data2, err := withDeps.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.Decode(&out, data2); err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(200, func() {
		if err := dec.Decode(&out, data2); err != nil {
			t.Fatal(err)
		}
	}); got > 1 {
		t.Errorf("single-dep decode allocates %v times per op, want <= 1", got)
	}
}
