package message

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestPCHeaderRoundTrip(t *testing.T) {
	cases := []PCHeader{
		{},
		{Hops: 1},
		{Hops: 255},
		{Hops: 1 << 20},
		{Refill: true},
		{Hops: 3, Refill: true},
	}
	for _, h := range cases {
		buf := AppendPCHeader(nil, h)
		if len(buf) != h.EncodedSize() {
			t.Fatalf("%+v: encoded %d bytes, EncodedSize says %d", h, len(buf), h.EncodedSize())
		}
		tail := []byte("message-bytes-follow")
		got, rest, err := DecodePCHeader(append(buf, tail...))
		if err != nil {
			t.Fatalf("%+v: decode: %v", h, err)
		}
		if got != h {
			t.Fatalf("round trip: got %+v want %+v", got, h)
		}
		if !bytes.Equal(rest, tail) {
			t.Fatalf("%+v: remainder %q, want %q", h, rest, tail)
		}
	}
}

func TestPCHeaderZeroIsOneByte(t *testing.T) {
	buf := AppendPCHeader(nil, PCHeader{})
	if len(buf) != 1 || buf[0] != 0 {
		t.Fatalf("zero header encodes as %v, want the single byte 0x00", buf)
	}
}

// TestPCHeaderWireCompat proves the header never perturbs the message
// codec: the bytes after the header are byte-identical to a standalone
// message encoding, so every existing decode path (old builds, the other
// engines, the fuzz corpus) reads a headered frame's message unchanged
// once the header is stripped.
func TestPCHeaderWireCompat(t *testing.T) {
	m := Message{
		Label: Label{Origin: "node-07~cli", Seq: 123456},
		Deps:  After(Label{Origin: "node-01~cli", Seq: 42}),
		Kind:  KindCommutative,
		Op:    "inc",
		Body:  []byte("payload"),
		Span:  SpanContext{TraceID: 9, Origin: "node-07"},
	}
	plain, err := m.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []PCHeader{{}, {Hops: 4, Refill: true}} {
		framed := AppendPCHeader(nil, h)
		framed, err = m.AppendBinary(framed)
		if err != nil {
			t.Fatal(err)
		}
		_, rest, err := DecodePCHeader(framed)
		if err != nil {
			t.Fatalf("%+v: decode header: %v", h, err)
		}
		if !bytes.Equal(rest, plain) {
			t.Fatalf("%+v: message bytes diverge from the standalone encoding", h)
		}
		var got Message
		if err := got.UnmarshalBinary(rest); err != nil {
			t.Fatalf("%+v: message after header does not decode: %v", h, err)
		}
		if got.Label != m.Label || got.Op != m.Op || got.Span != m.Span {
			t.Fatalf("%+v: decoded %+v, want %+v", h, got, m)
		}
	}
}

// TestPCHeaderSkipsUnknownRecords proves forward compatibility: a header
// carrying a record tag this build has never heard of decodes cleanly,
// with the unknown record skipped by length.
func TestPCHeaderSkipsUnknownRecords(t *testing.T) {
	buf := binary.AppendUvarint(nil, 2) // two records
	buf = binary.AppendUvarint(buf, 77) // unknown tag
	buf = binary.AppendUvarint(buf, 3)
	buf = append(buf, "xyz"...)
	buf = binary.AppendUvarint(buf, pcTagHops)
	buf = binary.AppendUvarint(buf, 1)
	buf = binary.AppendUvarint(buf, 5)
	buf = append(buf, "rest"...)
	h, rest, err := DecodePCHeader(buf)
	if err != nil {
		t.Fatalf("decode with unknown record: %v", err)
	}
	if h.Hops != 5 || h.Refill {
		t.Fatalf("got %+v, want Hops=5", h)
	}
	if string(rest) != "rest" {
		t.Fatalf("remainder %q, want %q", rest, "rest")
	}
}

func TestPCHeaderRejectsMalformed(t *testing.T) {
	bad := [][]byte{
		{},                                   // no count
		{1},                                  // count without record
		{1, pcTagHops},                       // tag without length
		{1, pcTagHops, 5},                    // length past end
		{1, pcTagHops, 1, 0},                 // zero hops is encoded by omission
		{2, pcTagHops, 1, 1, pcTagHops, 1, 2}, // duplicate hops
		{1, pcTagRefill, 1, 1},               // refill with payload
		{2, pcTagRefill, 0, pcTagRefill, 0},  // duplicate refill
		binary.AppendUvarint(nil, pcMaxRecords+1), // hostile count
	}
	for _, b := range bad {
		if _, _, err := DecodePCHeader(b); err == nil {
			t.Fatalf("decode %v: want error, got none", b)
		}
	}
}

// FuzzPCCastHeaderDecode hammers the header decoder with arbitrary bytes:
// it must never panic, and anything it accepts must re-encode to a header
// that decodes to the same value (the codec is canonical for known tags).
func FuzzPCCastHeaderDecode(f *testing.F) {
	f.Add(AppendPCHeader(nil, PCHeader{}))
	f.Add(AppendPCHeader(nil, PCHeader{Hops: 3}))
	f.Add(AppendPCHeader(nil, PCHeader{Hops: 1 << 30, Refill: true}))
	f.Add([]byte{2, 77, 3, 'x', 'y', 'z', 1, 1, 9})
	f.Add([]byte{255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, rest, err := DecodePCHeader(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatalf("remainder longer than input")
		}
		again, rest2, err := DecodePCHeader(append(AppendPCHeader(nil, h), rest...))
		if err != nil {
			t.Fatalf("re-encoded header does not decode: %v", err)
		}
		if again != h {
			t.Fatalf("re-encode changed header: %+v -> %+v", h, again)
		}
		if !bytes.Equal(rest2, rest) {
			t.Fatalf("re-encode changed remainder")
		}
	})
}
