package message

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalBinary checks the codec never panics on arbitrary input
// and that anything it accepts re-encodes to the same bytes (canonical
// form round-trip).
func FuzzUnmarshalBinary(f *testing.F) {
	seeds := []Message{
		{Label: Label{"a", 1}, Kind: KindCommutative, Op: "inc"},
		{
			Label: Label{"frontend~cli", 900},
			Deps:  After(Label{"a", 1}, Label{"b", 77}),
			Kind:  KindNonCommutative,
			Op:    "upd",
			Body:  []byte("key=value"),
		},
		{Label: Label{"x", 1}, Kind: KindRead, Op: "rd", Body: []byte{0, 255}},
	}
	for _, m := range seeds {
		data, err := m.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		var m Message
		if err := m.UnmarshalBinary(data); err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted input must be structurally valid, and the normalized
		// form must be a fixpoint: encode(decode(x)) decodes to the same
		// message and re-encodes to identical bytes.
		if err := m.Validate(); err != nil {
			t.Fatalf("decoder accepted invalid message: %v", err)
		}
		canon, err := m.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		var again Message
		if err := again.UnmarshalBinary(canon); err != nil {
			t.Fatalf("canonical form rejected: %v", err)
		}
		canon2, err := again.MarshalBinary()
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("canonical form not a fixpoint:\n1: %x\n2: %x", canon, canon2)
		}
		// The arithmetic size must match the real encoding exactly, for
		// every message the codec can produce.
		if m.EncodedSize() != len(canon) {
			t.Fatalf("EncodedSize = %d, encoded length = %d", m.EncodedSize(), len(canon))
		}
		// The pooled decoder must agree with the plain one byte for byte.
		var viaDec Message
		if err := NewDecoder().Decode(&viaDec, data); err != nil {
			t.Fatalf("Decoder rejected input UnmarshalBinary accepted: %v", err)
		}
		if viaDec.Label != m.Label || viaDec.Op != m.Op || viaDec.Kind != m.Kind ||
			!bytes.Equal(viaDec.Body, m.Body) || viaDec.Deps.String() != m.Deps.String() {
			t.Fatalf("Decoder disagrees with UnmarshalBinary: %v vs %v", viaDec, m)
		}
		if again.Label != m.Label || again.Op != m.Op || again.Kind != m.Kind ||
			!bytes.Equal(again.Body, m.Body) || again.Deps.String() != m.Deps.String() {
			t.Fatalf("round trip changed message: %v vs %v", m, again)
		}
	})
}
