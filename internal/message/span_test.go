package message

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func spanMsg() Message {
	return Message{
		Label: Label{"a", 3},
		Deps:  After(Label{"a", 1}, Label{"b", 2}),
		Kind:  KindNonCommutative,
		Op:    "upd",
		Body:  []byte("k=v"),
		Span:  SpanContext{TraceID: 42, Origin: "a"},
	}
}

func TestSpanRoundTrip(t *testing.T) {
	m := spanMsg()
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != m.EncodedSize() {
		t.Fatalf("EncodedSize = %d, encoded %d bytes", m.EncodedSize(), len(data))
	}
	var back Message
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.Span != m.Span {
		t.Fatalf("span round trip: got %v want %v", back.Span, m.Span)
	}
	var viaDec Message
	if err := NewDecoder().Decode(&viaDec, data); err != nil {
		t.Fatal(err)
	}
	if viaDec.Span != m.Span {
		t.Fatalf("decoder span round trip: got %v want %v", viaDec.Span, m.Span)
	}
}

// TestSpanBackwardCompat pins both directions of wire compatibility: a
// message without a span encodes byte-identically to the pre-trace codec
// (so old decoders accept it), and a pre-trace frame — which ends exactly
// at the body — decodes cleanly with an untraced span.
func TestSpanBackwardCompat(t *testing.T) {
	m := spanMsg()
	m.Span = SpanContext{}
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct the pre-trace layout by hand: label, deps, kind, op, body
	// and nothing after.
	var legacy []byte
	legacy = appendLabel(legacy, m.Label)
	legacy = binary.AppendUvarint(legacy, uint64(m.Deps.Len()))
	for _, d := range m.Deps.Labels() {
		legacy = appendLabel(legacy, d)
	}
	legacy = binary.AppendUvarint(legacy, uint64(m.Kind))
	legacy = appendString(legacy, m.Op)
	legacy = binary.AppendUvarint(legacy, uint64(len(m.Body)))
	legacy = append(legacy, m.Body...)
	if !bytes.Equal(data, legacy) {
		t.Fatalf("untraced encoding diverged from pre-trace layout:\nnew: %x\nold: %x", data, legacy)
	}
	var back Message
	if err := back.UnmarshalBinary(legacy); err != nil {
		t.Fatalf("pre-trace frame rejected: %v", err)
	}
	if back.Span.Valid() {
		t.Fatalf("pre-trace frame decoded with span %v", back.Span)
	}
}

// TestSpanUnknownTrailerSkipped checks forward compatibility: records with
// tags this build does not know are skipped by length, and a span record
// around them still decodes.
func TestSpanUnknownTrailerSkipped(t *testing.T) {
	m := spanMsg()
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Append a future trailer record: tag 9, 4-byte payload.
	data = binary.AppendUvarint(data, 9)
	data = binary.AppendUvarint(data, 4)
	data = append(data, 0xDE, 0xAD, 0xBE, 0xEF)
	var back Message
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatalf("unknown trailer rejected: %v", err)
	}
	if back.Span != m.Span {
		t.Fatalf("span lost around unknown trailer: got %v want %v", back.Span, m.Span)
	}
}

func TestSpanMalformedTrailers(t *testing.T) {
	base, err := spanMsg().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	bare, err := Message{Label: Label{"a", 1}, Kind: KindCommutative, Op: "inc"}.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	trailer := base[len(base)-spanMsg().Span.encodedSize():]
	cases := map[string][]byte{
		// A second span record is a protocol error, not a merge.
		"duplicate span": append(append([]byte{}, base...), trailer...),
		// Trace id zero means untraced and must never be encoded.
		"zero trace id": append(append([]byte{}, bare...), trailerSpan, 2, 0, 0),
		// Record length runs past the frame.
		"truncated payload": append(append([]byte{}, bare...), trailerSpan, 200, 1),
		// Span payload with junk after the origin string.
		"stray span bytes": append(append([]byte{}, bare...), trailerSpan, 4, 7, 1, 'a', 0xFF),
		// Tag present but payload length missing.
		"truncated record": append(append([]byte{}, bare...), trailerSpan),
	}
	for name, data := range cases {
		var m Message
		if err := m.UnmarshalBinary(data); err == nil {
			t.Errorf("%s: accepted, span=%v", name, m.Span)
		}
	}
}

// TestSpanDuplicateTrailerBytes builds the duplicate-span case precisely:
// two well-formed span records back to back.
func TestSpanDuplicateTrailerBytes(t *testing.T) {
	m := Message{Label: Label{"a", 1}, Kind: KindCommutative, Op: "inc",
		Span: SpanContext{TraceID: 7, Origin: "a"}}
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	bare := m
	bare.Span = SpanContext{}
	prefix, err := bare.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	dup := append(append([]byte{}, data...), data[len(prefix):]...)
	var back Message
	if err := back.UnmarshalBinary(dup); err == nil {
		t.Fatalf("duplicate span record accepted: %v", back.Span)
	}
}

// FuzzFrameSpanDecode drives the trailer parser with arbitrary bytes after
// a valid message prefix, plus fully arbitrary frames: never panic, and
// anything accepted must re-encode to a canonical fixpoint whose size
// EncodedSize predicts exactly (the same contract FuzzUnmarshalBinary pins
// for the pre-trace codec).
func FuzzFrameSpanDecode(f *testing.F) {
	seeds := []Message{
		spanMsg(),
		{Label: Label{"b", 1}, Kind: KindControl, Op: "hb",
			Span: SpanContext{TraceID: 1, Origin: "b~seq"}},
		{Label: Label{"c", 9}, Kind: KindRead, Op: "rd"},
	}
	for _, m := range seeds {
		data, err := m.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// A frame with an unknown trailer record after the span.
	withUnknown, _ := spanMsg().MarshalBinary()
	withUnknown = append(withUnknown, 5, 2, 1, 2)
	f.Add(withUnknown)
	// A pre-trace frame (no trailer at all).
	legacy, _ := Message{Label: Label{"a", 1}, Kind: KindCommutative, Op: "inc"}.MarshalBinary()
	f.Add(legacy)

	f.Fuzz(func(t *testing.T, data []byte) {
		var m Message
		if err := m.UnmarshalBinary(data); err != nil {
			return
		}
		canon, err := m.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if m.EncodedSize() != len(canon) {
			t.Fatalf("EncodedSize = %d, encoded length = %d", m.EncodedSize(), len(canon))
		}
		var again Message
		if err := again.UnmarshalBinary(canon); err != nil {
			t.Fatalf("canonical form rejected: %v", err)
		}
		if again.Span != m.Span {
			t.Fatalf("span changed across canonical round trip: %v vs %v", again.Span, m.Span)
		}
		canon2, err := again.MarshalBinary()
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("canonical form not a fixpoint:\n1: %x\n2: %x", canon, canon2)
		}
		var viaDec Message
		if err := NewDecoder().Decode(&viaDec, data); err != nil {
			t.Fatalf("Decoder rejected input UnmarshalBinary accepted: %v", err)
		}
		if viaDec.Span != m.Span {
			t.Fatalf("Decoder span disagrees: %v vs %v", viaDec.Span, m.Span)
		}
	})
}
