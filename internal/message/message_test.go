package message

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

func TestLabelString(t *testing.T) {
	tests := []struct {
		label Label
		want  string
	}{
		{Nil, "∅"},
		{Label{"a", 1}, "a#1"},
		{Label{"node-7", 42}, "node-7#42"},
	}
	for _, tt := range tests {
		if got := tt.label.String(); got != tt.want {
			t.Errorf("String(%v) = %q, want %q", tt.label, got, tt.want)
		}
	}
}

func TestLabelLess(t *testing.T) {
	tests := []struct {
		a, b Label
		want bool
	}{
		{Label{"a", 1}, Label{"b", 1}, true},
		{Label{"a", 2}, Label{"a", 3}, true},
		{Label{"b", 1}, Label{"a", 9}, false},
		{Label{"a", 1}, Label{"a", 1}, false},
	}
	for _, tt := range tests {
		if got := tt.a.Less(tt.b); got != tt.want {
			t.Errorf("(%v).Less(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestAfterNormalizes(t *testing.T) {
	p := After(Label{"b", 2}, Nil, Label{"a", 1}, Label{"b", 2}, Label{"a", 3})
	want := []Label{{"a", 1}, {"a", 3}, {"b", 2}}
	got := p.Labels()
	if len(got) != len(want) {
		t.Fatalf("Labels() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Labels()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if p.String() != "(a#1 ∧ a#3 ∧ b#2)" {
		t.Errorf("String() = %q", p.String())
	}
}

func TestUnconstrained(t *testing.T) {
	p := Unconstrained()
	if !p.Empty() || p.Len() != 0 {
		t.Fatalf("Unconstrained not empty: %v", p)
	}
	if !p.SatisfiedBy(func(Label) bool { return false }) {
		t.Error("empty predicate must always be satisfied")
	}
	if p.String() != "∅" {
		t.Errorf("String() = %q", p.String())
	}
	if After(Nil).Len() != 0 {
		t.Error("After(Nil) must be empty (OccursAfter(NULL))")
	}
}

func TestContains(t *testing.T) {
	p := After(Label{"a", 1}, Label{"c", 3})
	for _, l := range p.Labels() {
		if !p.Contains(l) {
			t.Errorf("Contains(%v) = false for member", l)
		}
	}
	for _, l := range []Label{{"a", 2}, {"b", 1}, {"d", 9}, Nil} {
		if p.Contains(l) {
			t.Errorf("Contains(%v) = true for non-member", l)
		}
	}
}

func TestSatisfiedBy(t *testing.T) {
	p := After(Label{"a", 1}, Label{"b", 2})
	delivered := map[Label]bool{{Origin: "a", Seq: 1}: true}
	if p.SatisfiedBy(func(l Label) bool { return delivered[l] }) {
		t.Error("predicate satisfied with missing dependency")
	}
	delivered[Label{"b", 2}] = true
	if !p.SatisfiedBy(func(l Label) bool { return delivered[l] }) {
		t.Error("predicate unsatisfied with all dependencies delivered")
	}
}

func TestKind(t *testing.T) {
	for _, k := range []Kind{KindCommutative, KindNonCommutative, KindRead, KindControl} {
		if !k.Valid() {
			t.Errorf("%v reported invalid", k)
		}
	}
	if Kind(0).Valid() || Kind(99).Valid() {
		t.Error("out-of-range kinds reported valid")
	}
	if KindRead.String() != "read" {
		t.Errorf("KindRead.String() = %q", KindRead.String())
	}
}

func TestValidate(t *testing.T) {
	valid := Message{Label: Label{"a", 1}, Kind: KindCommutative, Op: "inc"}
	tests := []struct {
		name    string
		mutate  func(*Message)
		wantErr bool
	}{
		{"valid", func(*Message) {}, false},
		{"nil label", func(m *Message) { m.Label = Nil }, true},
		{"bad kind", func(m *Message) { m.Kind = 0 }, true},
		{"self dependency", func(m *Message) { m.Deps = After(m.Label) }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := valid
			tt.mutate(&m)
			if err := m.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	tests := []Message{
		{Label: Label{"a", 1}, Kind: KindCommutative, Op: "inc"},
		{
			Label: Label{"frontend-3", 900},
			Deps:  After(Label{"a", 1}, Label{"b", 77}),
			Kind:  KindNonCommutative,
			Op:    "upd",
			Body:  []byte("key=value"),
		},
		{Label: Label{"x", 1}, Kind: KindRead, Op: "rd", Body: []byte{0, 1, 2, 255}},
		{Label: Label{"", 5}, Kind: KindControl, Op: ""},
	}
	for i, m := range tests {
		data, err := m.MarshalBinary()
		if err != nil {
			t.Fatalf("case %d: MarshalBinary: %v", i, err)
		}
		var got Message
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatalf("case %d: UnmarshalBinary: %v", i, err)
		}
		if got.Label != m.Label || got.Kind != m.Kind || got.Op != m.Op ||
			!bytes.Equal(got.Body, m.Body) || got.Deps.String() != m.Deps.String() {
			t.Errorf("case %d: round trip mismatch: %v -> %v", i, m, got)
		}
	}
}

func TestMarshalDeterministic(t *testing.T) {
	m := Message{
		Label: Label{"a", 1},
		Deps:  After(Label{"c", 3}, Label{"b", 2}),
		Kind:  KindCommutative,
		Op:    "inc",
	}
	a, _ := m.MarshalBinary()
	b, _ := m.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Error("repeated encodings differ")
	}
	// Same deps in a different construction order must encode identically.
	m2 := m
	m2.Deps = After(Label{"b", 2}, Label{"c", 3})
	c, _ := m2.MarshalBinary()
	if !bytes.Equal(a, c) {
		t.Error("dep construction order leaked into encoding")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	valid, _ := (Message{
		Label: Label{"abc", 7},
		Deps:  After(Label{"p", 1}),
		Kind:  KindRead,
		Op:    "rd",
		Body:  []byte("xyz"),
	}).MarshalBinary()
	tests := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated head", valid[:1]},
		{"truncated deps", valid[:6]},
		{"truncated body", valid[:len(valid)-2]},
		{"trailing bytes", append(append([]byte{}, valid...), 1)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var m Message
			if err := m.UnmarshalBinary(tt.data); err == nil {
				t.Errorf("UnmarshalBinary succeeded on %s", tt.name)
			}
		})
	}
	t.Run("decoded invalid kind", func(t *testing.T) {
		bad := Message{Label: Label{"a", 1}, Kind: Kind(50), Op: "x"}
		data, _ := bad.MarshalBinary()
		var m Message
		if err := m.UnmarshalBinary(data); err == nil {
			t.Error("decoding message with invalid kind must fail Validate")
		}
	})
}

func TestLabeler(t *testing.T) {
	g := NewLabeler("srv")
	if g.Last() != Nil {
		t.Fatalf("fresh labeler Last = %v, want Nil", g.Last())
	}
	for want := uint64(1); want <= 3; want++ {
		l := g.Next()
		if l.Origin != "srv" || l.Seq != want {
			t.Fatalf("Next() = %v, want srv#%d", l, want)
		}
		if g.Last() != l {
			t.Fatalf("Last() = %v after issuing %v", g.Last(), l)
		}
	}
}

func TestLabelersIndependent(t *testing.T) {
	a, b := NewLabeler("a"), NewLabeler("b")
	seen := make(map[Label]bool)
	for i := 0; i < 100; i++ {
		for _, l := range []Label{a.Next(), b.Next()} {
			if seen[l] {
				t.Fatalf("duplicate label %v", l)
			}
			seen[l] = true
		}
	}
}

func propLabel(origin uint8, seq uint8) Label {
	return Label{Origin: fmt.Sprintf("p%d", origin%4), Seq: uint64(seq%8) + 1}
}

func TestPropAfterIdempotent(t *testing.T) {
	f := func(o1, s1, o2, s2 uint8) bool {
		a, b := propLabel(o1, s1), propLabel(o2, s2)
		p1 := After(a, b)
		p2 := After(p1.Labels()...)
		return p1.String() == p2.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropAfterOrderInsensitive(t *testing.T) {
	f := func(o1, s1, o2, s2, o3, s3 uint8) bool {
		a, b, c := propLabel(o1, s1), propLabel(o2, s2), propLabel(o3, s3)
		return After(a, b, c).String() == After(c, a, b).String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropRoundTrip(t *testing.T) {
	f := func(o1, s1, o2, s2 uint8, body []byte, op string) bool {
		m := Message{
			Label: propLabel(o1, s1),
			Deps:  After(propLabel(o2, s2)),
			Kind:  KindCommutative,
			Op:    op,
			Body:  body,
		}
		if m.Deps.Contains(m.Label) {
			return true // skip self-dep inputs; Validate rejects them by design
		}
		data, err := m.MarshalBinary()
		if err != nil {
			return false
		}
		var got Message
		if err := got.UnmarshalBinary(data); err != nil {
			return false
		}
		return got.Label == m.Label && got.Op == m.Op && bytes.Equal(got.Body, m.Body)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodedSizeGrowsWithDeps(t *testing.T) {
	base := Message{Label: Label{"a", 1}, Kind: KindCommutative, Op: "inc"}
	small := base.EncodedSize()
	base.Deps = After(Label{"b", 1}, Label{"c", 1}, Label{"d", 1})
	if base.EncodedSize() <= small {
		t.Errorf("EncodedSize with deps %d <= without %d", base.EncodedSize(), small)
	}
}
