package message

import (
	"encoding/binary"
	"fmt"
)

// PCHeader is the constant-size wire header the PC-cast engine prepends to
// each data frame. Where the vector-clock engines stamp O(n) ordering
// metadata per frame, PC-cast needs none at all for ordering — per-link
// FIFO order plus forward-on-first-receipt carries causality — so the
// header holds only dissemination bookkeeping:
//
//   - Hops counts how many forwarders the frame passed through (0 for the
//     origin's own emission), observability for the flood depth.
//   - Refill marks a retransmission served out of a peer's retention
//     buffer. Refill frames bypass the sender's FIFO stream, so receivers
//     must not forward them and must rely on the dependency holdback for
//     ordering instead.
//
// The header encodes as a tagged-record sequence — [count uvarint] then
// count × [tag uvarint][len uvarint][payload] — mirroring the message
// trailer scheme (span.go): decoders skip tags they do not understand by
// length alone, so newer builds can add records without breaking old ones.
// Zero-valued fields are omitted entirely; the common-case header for an
// origin emission is the single byte 0x00.
type PCHeader struct {
	// Hops is the number of forward steps this copy took (0 = from origin).
	Hops uint32
	// Refill marks an out-of-stream retransmission; never forward these.
	Refill bool
}

// PC header record tags.
const (
	pcTagHops   = 1
	pcTagRefill = 2
)

// pcMaxRecords bounds the record count a decoder accepts; headers are tiny
// and a hostile count must not size an attacker-controlled loop.
const pcMaxRecords = 16

// EncodedSize returns the exact wire size of the header.
func (h PCHeader) EncodedSize() int {
	n := 1 // record count always fits one byte (count <= 2 today)
	if h.Hops > 0 {
		n += uvarintLen(pcTagHops) + 1 + uvarintLen(uint64(h.Hops))
	}
	if h.Refill {
		n += uvarintLen(pcTagRefill) + 1 // empty payload: presence is the value
	}
	return n
}

// AppendPCHeader appends h's encoding to buf and returns the extended slice.
func AppendPCHeader(buf []byte, h PCHeader) []byte {
	var count uint64
	if h.Hops > 0 {
		count++
	}
	if h.Refill {
		count++
	}
	buf = binary.AppendUvarint(buf, count)
	if h.Hops > 0 {
		buf = binary.AppendUvarint(buf, pcTagHops)
		buf = binary.AppendUvarint(buf, uint64(uvarintLen(uint64(h.Hops))))
		buf = binary.AppendUvarint(buf, uint64(h.Hops))
	}
	if h.Refill {
		buf = binary.AppendUvarint(buf, pcTagRefill)
		buf = binary.AppendUvarint(buf, 0)
	}
	return buf
}

// DecodePCHeader parses a header from the front of data and returns the
// remainder (the encoded message). Unknown record tags are skipped by
// length; duplicate or malformed known records are rejected.
func DecodePCHeader(data []byte) (PCHeader, []byte, error) {
	var h PCHeader
	count, used := binary.Uvarint(data)
	if used <= 0 {
		return h, nil, fmt.Errorf("message: truncated pc header count")
	}
	if count > pcMaxRecords {
		return h, nil, fmt.Errorf("message: pc header record count %d exceeds limit", count)
	}
	data = data[used:]
	var sawHops, sawRefill bool
	for i := uint64(0); i < count; i++ {
		tag, used := binary.Uvarint(data)
		if used <= 0 {
			return PCHeader{}, nil, fmt.Errorf("message: truncated pc header tag")
		}
		data = data[used:]
		plen, used := binary.Uvarint(data)
		if used <= 0 || uint64(len(data)-used) < plen {
			return PCHeader{}, nil, fmt.Errorf("message: truncated pc header payload")
		}
		payload := data[used : used+int(plen)]
		data = data[used+int(plen):]
		switch tag {
		case pcTagHops:
			if sawHops {
				return PCHeader{}, nil, fmt.Errorf("message: duplicate pc hops record")
			}
			sawHops = true
			hops, used := binary.Uvarint(payload)
			if used <= 0 || used != len(payload) || hops == 0 || hops > 1<<32-1 {
				return PCHeader{}, nil, fmt.Errorf("message: invalid pc hops record")
			}
			h.Hops = uint32(hops)
		case pcTagRefill:
			if sawRefill {
				return PCHeader{}, nil, fmt.Errorf("message: duplicate pc refill record")
			}
			if len(payload) != 0 {
				return PCHeader{}, nil, fmt.Errorf("message: %d stray pc refill bytes", len(payload))
			}
			sawRefill = true
			h.Refill = true
		default:
			// Unknown record: skipped. Future fields live here.
		}
	}
	return h, data, nil
}
