package message_test

import (
	"fmt"

	"causalshare/internal/message"
)

// The OSend ordering predicate of the paper: a message that must occur
// after two predecessors (AND dependency).
func ExampleAfter() {
	m1 := message.Label{Origin: "client-a", Seq: 1}
	m2 := message.Label{Origin: "client-b", Seq: 1}
	pred := message.After(m2, m1, m1) // duplicates collapse, order normalizes
	fmt.Println(pred)
	fmt.Println(pred.Contains(m1), pred.Contains(message.Label{Origin: "x", Seq: 9}))
	// Output:
	// (client-a#1 ∧ client-b#1)
	// true false
}

func ExampleMessage_Validate() {
	m := message.Message{
		Label: message.Label{Origin: "client-a", Seq: 2},
		Deps:  message.After(message.Label{Origin: "client-a", Seq: 1}),
		Kind:  message.KindCommutative,
		Op:    "inc",
	}
	fmt.Println(m.Validate() == nil)
	m.Deps = message.After(m.Label) // self dependency is rejected
	fmt.Println(m.Validate() == nil)
	// Output:
	// true
	// false
}

func ExampleLabeler() {
	g := message.NewLabeler("frontend-1")
	fmt.Println(g.Next())
	fmt.Println(g.Next())
	fmt.Println(g.Last())
	// Output:
	// frontend-1#1
	// frontend-1#2
	// frontend-1#2
}
