package message

import (
	"encoding/binary"
	"fmt"
)

// maxIntern bounds the decoder's string table. Origins and operation names
// are drawn from small vocabularies (group members × layers, a handful of
// ops), so the cap is generous; past it the decoder degrades gracefully to
// plain allocation.
const maxIntern = 4096

// Decoder decodes messages while interning the strings that repeat across
// frames — label origins and operation names. In a broadcast group both
// vocabularies are tiny and every frame repeats them, so a long-lived
// decoder makes the steady-state receive path allocation-free for
// dependency-light messages.
//
// A Decoder is not safe for concurrent use; each receive loop owns one.
type Decoder struct {
	intern map[string]string
	// deps is a scratch slice reused across Decode calls for the initial
	// dependency parse; the final slice handed to the message is freshly
	// cut only when the message actually has dependencies.
	deps []Label
}

// NewDecoder returns an empty decoder.
func NewDecoder() *Decoder {
	return &Decoder{intern: make(map[string]string, 64)}
}

// str returns b as a string, interned when the decoder has one. The map
// lookup with a converted key compiles to a no-allocation probe.
func (d *Decoder) str(b []byte) string {
	if d == nil {
		return string(b)
	}
	if s, ok := d.intern[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(d.intern) < maxIntern {
		d.intern[s] = s
	}
	return s
}

// Decode decodes one MarshalBinary frame into m. It is equivalent to
// m.UnmarshalBinary(data) but amortizes string and slice allocations.
// The decoded message never aliases data, so callers may recycle the
// buffer immediately.
func (d *Decoder) Decode(m *Message, data []byte) error {
	return decodeMessage(m, data, d)
}

func readStringIn(data []byte, d *Decoder) (string, []byte, error) {
	l, used := binary.Uvarint(data)
	if used <= 0 || uint64(len(data)-used) < l {
		return "", nil, fmt.Errorf("message: truncated string")
	}
	return d.str(data[used : used+int(l)]), data[used+int(l):], nil
}

func readLabelIn(data []byte, d *Decoder) (Label, []byte, error) {
	origin, rest, err := readStringIn(data, d)
	if err != nil {
		return Nil, nil, err
	}
	seq, used := binary.Uvarint(rest)
	if used <= 0 {
		return Nil, nil, fmt.Errorf("message: truncated label seq")
	}
	return Label{Origin: origin, Seq: seq}, rest[used:], nil
}

// decodeMessage is the codec's single decode path; d may be nil.
func decodeMessage(m *Message, data []byte, d *Decoder) error {
	label, rest, err := readLabelIn(data, d)
	if err != nil {
		return err
	}
	nDeps, used := binary.Uvarint(rest)
	if used <= 0 {
		return fmt.Errorf("message: truncated dep count")
	}
	rest = rest[used:]
	// Every dependency takes at least 2 bytes on the wire, so a count
	// exceeding the remaining bytes is malformed; reject it before it can
	// size an allocation (fuzzing found multi-terabyte counts here).
	if nDeps > uint64(len(rest))/2 {
		return fmt.Errorf("message: dep count %d exceeds frame", nDeps)
	}
	var scratch []Label
	if d != nil {
		scratch = d.deps[:0]
	} else {
		scratch = make([]Label, 0, nDeps)
	}
	canonical := true // sorted, unique, nil-free — true for our own encodes
	for i := uint64(0); i < nDeps; i++ {
		var dep Label
		dep, rest, err = readLabelIn(rest, d)
		if err != nil {
			return fmt.Errorf("message: dep %d: %w", i, err)
		}
		if dep.IsNil() || (i > 0 && !scratch[i-1].Less(dep)) {
			canonical = false
		}
		scratch = append(scratch, dep)
	}
	if d != nil {
		d.deps = scratch[:0]
	}
	kind, used := binary.Uvarint(rest)
	if used <= 0 {
		return fmt.Errorf("message: truncated kind")
	}
	rest = rest[used:]
	op, rest, err := readStringIn(rest, d)
	if err != nil {
		return fmt.Errorf("message: op: %w", err)
	}
	bodyLen, used := binary.Uvarint(rest)
	if used <= 0 || uint64(len(rest)-used) < bodyLen {
		return fmt.Errorf("message: truncated body")
	}
	rest = rest[used:]
	var body []byte
	if bodyLen > 0 {
		body = make([]byte, bodyLen)
		copy(body, rest[:bodyLen])
	}
	// Anything after the body is an optional trailer block (span context
	// today, unknown length-skippable records tomorrow). Pre-trace frames
	// end exactly at the body, so the loop body never runs for them.
	span, sentAt, err := decodeTrailers(rest[bodyLen:], d)
	if err != nil {
		return err
	}
	var deps OccursAfter
	if len(scratch) > 0 {
		if canonical {
			deps = afterSorted(append([]Label(nil), scratch...))
		} else {
			deps = After(scratch...) // foreign encoder: normalize
		}
	}
	*m = Message{
		Label:  label,
		Deps:   deps,
		Kind:   Kind(kind),
		Op:     op,
		Body:   body,
		Span:   span,
		SentAt: sentAt,
	}
	return m.Validate()
}
