package total

import (
	"sync"
	"testing"
	"time"

	"causalshare/internal/group"
	"causalshare/internal/message"
	"causalshare/internal/telemetry"
)

// loopBcast is a Broadcaster stub for surgical sequencer tests: it records
// every broadcast and, when loop is set, synchronously self-delivers it
// back into the sequencer (the causal engine's self-delivery contract,
// minus the network).
type loopBcast struct {
	self string
	mu   sync.Mutex
	sent []message.Message
	loop *Sequencer
}

func (b *loopBcast) Self() string { return b.self }
func (b *loopBcast) Close() error { return nil }

func (b *loopBcast) Broadcast(m message.Message) error {
	b.mu.Lock()
	b.sent = append(b.sent, m)
	loop := b.loop
	b.mu.Unlock()
	if loop != nil {
		loop.Ingest(m)
	}
	return nil
}

func (b *loopBcast) ops(op string) []message.Message {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []message.Message
	for _, m := range b.sent {
		if m.Op == op {
			out = append(out, m)
		}
	}
	return out
}

func newFailoverSequencer(t *testing.T, self string, cfg Config) (*Sequencer, *loopBcast, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	cfg.Self = self
	cfg.Group = group.MustNew("g", []string{"a", "b", "c"})
	cfg.Telemetry = reg
	if cfg.Deliver == nil {
		cfg.Deliver = func(message.Message) {}
	}
	s, err := NewSequencer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	b := &loopBcast{self: self}
	s.Bind(b)
	return s, b, reg
}

// control fabricates a control-plane message as another member would send
// it (its own sequencer-layer label chain).
func control(member string, seq uint64, op string, body []byte) message.Message {
	return message.Message{
		Label: message.Label{Origin: SeqOrigin(member), Seq: seq},
		Kind:  message.KindControl,
		Op:    op,
		Body:  body,
	}
}

// TestFencingDropsStaleEpochs pins the fence: once a member has adopted a
// higher epoch, ORDER announcements from a deposed leader are counted and
// ignored.
func TestFencingDropsStaleEpochs(t *testing.T) {
	s, _, reg := newFailoverSequencer(t, "b", Config{FailTimeout: time.Minute})
	// Adopt epoch 2 via an ORDER from its leader "c".
	s.Ingest(control("c", 1, opOrder, encodeOrder(2, 1, message.Label{Origin: "a~seq", Seq: 9})))
	if got := s.Epoch(); got != 2 {
		t.Fatalf("epoch = %d, want 2", got)
	}
	// The deposed epoch-0 leader "a" announces seq 2: must be fenced.
	s.Ingest(control("a", 1, opOrder, encodeOrder(0, 2, message.Label{Origin: "a~seq", Seq: 10})))
	if got := reg.Snapshot().Get("total_order_fenced_total"); got != 1 {
		t.Fatalf("total_order_fenced_total = %d, want 1", got)
	}
	if s.Epoch() != 2 {
		t.Fatal("stale ORDER moved the epoch")
	}
	// A stale ELECT and a stale ACK are fenced too.
	s.Ingest(control("a", 2, opElect, encodeElect(0)))
	s.Ingest(control("a", 3, opAck, encodeAck(1, 1, nil)))
	if got := reg.Snapshot().Get("total_order_fenced_total"); got != 3 {
		t.Fatalf("total_order_fenced_total = %d, want 3", got)
	}
}

// TestQuorumGuardBlocksSoloElection pins the split-brain guard: a member
// that suspects everyone (it is the one partitioned away) starts a
// campaign but must not complete it on its own ack alone.
func TestQuorumGuardBlocksSoloElection(t *testing.T) {
	s, b, reg := newFailoverSequencer(t, "b", Config{FailTimeout: 20 * time.Millisecond})
	// Never ingest anything: every peer times out, including leader "a".
	time.Sleep(40 * time.Millisecond)
	s.Tick(time.Now())
	if got := s.Epoch(); got != 1 {
		t.Fatalf("epoch = %d, want campaign at 1", got)
	}
	if got := reg.Snapshot().Get("total_elections_total"); got != 1 {
		t.Fatalf("total_elections_total = %d, want 1", got)
	}
	if got := len(b.ops(opElect)); got == 0 {
		t.Fatal("no ELECT broadcast")
	}
	// With only its own ack (1 of 3 members) the campaign must hang: no
	// re-proposal ORDER, no failover-latency observation.
	if got := len(b.ops(opOrder)); got != 0 {
		t.Fatalf("solo campaign completed: %d ORDER broadcasts", got)
	}
	for _, h := range reg.Snapshot().Histograms {
		if h.Name == "total_failover_latency_seconds" && h.Count != 0 {
			t.Fatal("solo campaign observed failover latency")
		}
	}
}

// TestElectionCompletesAndReproposes drives a full succession at the
// candidate: leader "a" goes silent, "b" campaigns for epoch 1, the ack
// from the one other live member completes it (2 of 3 is a majority), and
// the retained assignment from the dead leader is re-announced under the
// new epoch.
func TestElectionCompletesAndReproposes(t *testing.T) {
	s, b, reg := newFailoverSequencer(t, "b", Config{FailTimeout: 25 * time.Millisecond})
	dataLabel := message.Label{Origin: "c~seq", Seq: 5}
	// The old leader assigned seq 1 before dying; "b" retains it (no data
	// yet, so it is not delivered).
	s.Ingest(control("a", 1, opOrder, encodeOrder(0, 1, dataLabel)))
	time.Sleep(50 * time.Millisecond)
	// "c" is still alive (fresh traffic), "a" is not.
	s.Ingest(control("c", 1, opSeqHB, encodeSeqHB(0, 1)))
	s.Tick(time.Now())
	if s.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", s.Epoch())
	}
	// c acks the campaign: quorum (b, c) reached, election completes.
	s.Ingest(control("c", 2, opAck, encodeAck(1, 1, nil)))
	orders := b.ops(opOrder)
	if len(orders) != 1 {
		t.Fatalf("want 1 re-proposal ORDER, got %d", len(orders))
	}
	epoch, seq, label, err := decodeOrder(orders[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 || seq != 1 || label != dataLabel {
		t.Fatalf("re-proposal = (%d,%d,%v), want (1,1,%v)", epoch, seq, label, dataLabel)
	}
	snap := reg.Snapshot()
	if got := snap.Get("total_reproposed_total"); got != 1 {
		t.Fatalf("total_reproposed_total = %d, want 1", got)
	}
	found := false
	for _, h := range snap.Histograms {
		if h.Name == "total_failover_latency_seconds" {
			found = true
			if h.Count == 0 {
				t.Fatal("failover latency not observed at election completion")
			}
		}
	}
	if !found {
		t.Fatal("total_failover_latency_seconds not registered")
	}
}

// TestMaxPendingBoundsHoldback pins the follower holdback bound: beyond
// MaxPending, undeliverable data is dropped and counted instead of
// growing the map without limit.
func TestMaxPendingBoundsHoldback(t *testing.T) {
	s, _, reg := newFailoverSequencer(t, "b", Config{MaxPending: 3})
	for i := uint64(1); i <= 5; i++ {
		s.Ingest(message.Message{
			Label: message.Label{Origin: SeqOrigin("c"), Seq: i},
			Kind:  message.KindNonCommutative,
			Op:    "app.op",
			Body:  []byte("x"),
		})
	}
	if got := s.Pending(); got != 3 {
		t.Fatalf("Pending() = %d, want 3", got)
	}
	if got := reg.Snapshot().Get("total_pending_dropped_total"); got != 2 {
		t.Fatalf("total_pending_dropped_total = %d, want 2", got)
	}
}

// TestResumeAssignsSnapshotHoldback pins the rejoin stall fix: a member
// that resumes a snapshot whose epoch it leads must sequence the
// snapshot's unassigned holdback itself — those data messages were
// delivered group-wide before the snapshot and will never re-enter
// through the causal layer.
func TestResumeAssignsSnapshotHoldback(t *testing.T) {
	var delivered []message.Message
	s, b, _ := newFailoverSequencer(t, "b", Config{
		FailTimeout: time.Minute,
		Deliver:     func(m message.Message) { delivered = append(delivered, m) },
	})
	b.loop = s // self-delivery, so its own ORDERs come back
	d1 := message.Message{Label: message.Label{Origin: "a~seq", Seq: 7}, Op: "app.op", Body: []byte("1")}
	d2 := message.Message{Label: message.Label{Origin: "c~seq", Seq: 4}, Op: "app.op", Body: []byte("2")}
	snap := SyncSnapshot{
		Epoch:       1, // leaderOf(1) == "b"
		NextDeliver: 3,
		Data:        []message.Message{d1, d2},
	}
	s.Resume(snap, 9)
	if got := s.Epoch(); got != 1 {
		t.Fatalf("epoch = %d, want 1", got)
	}
	if got := len(b.ops(opOrder)); got != 2 {
		t.Fatalf("want 2 ORDER broadcasts for the unassigned holdback, got %d", got)
	}
	if len(delivered) != 2 {
		t.Fatalf("want both holdback messages delivered, got %d", len(delivered))
	}
	// Deterministic label order: a~seq/7 before c~seq/4, at seqs 3 and 4.
	if string(delivered[0].Body) != "1" || string(delivered[1].Body) != "2" {
		t.Fatalf("holdback sequenced out of label order: %q, %q", delivered[0].Body, delivered[1].Body)
	}
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after resume, want 0", got)
	}
	// The resumed labeler must continue above the watermark peers hold.
	l, err := s.ASend("app.op", message.KindNonCommutative, []byte("new"), message.After())
	if err != nil {
		t.Fatal(err)
	}
	if l.Seq <= 9 {
		t.Fatalf("post-resume label %d not above resumed watermark 9", l.Seq)
	}
}

// TestResumeAsFollowerWaits pins the complementary case: a resumed member
// that does NOT lead the snapshot epoch must not sequence anything — that
// is the live leader's job.
func TestResumeAsFollowerWaits(t *testing.T) {
	s, b, _ := newFailoverSequencer(t, "c", Config{FailTimeout: time.Minute})
	snap := SyncSnapshot{
		Epoch:       1, // leaderOf(1) == "b", not "c"
		NextDeliver: 3,
		Data: []message.Message{
			{Label: message.Label{Origin: "a~seq", Seq: 7}, Op: "app.op", Body: []byte("1")},
		},
	}
	s.Resume(snap, 0)
	if got := len(b.ops(opOrder)); got != 0 {
		t.Fatalf("resumed follower broadcast %d ORDERs", got)
	}
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending() = %d, want 1 (held for the leader)", got)
	}
}

// TestTickNoopWithoutFailover pins the legacy mode: FailTimeout zero means
// no detector, no elections, no broadcasts from Tick — a dead leader
// stalls the group (the chaos suite demonstrates the stall end to end).
func TestTickNoopWithoutFailover(t *testing.T) {
	s, b, reg := newFailoverSequencer(t, "b", Config{})
	time.Sleep(10 * time.Millisecond)
	s.Tick(time.Now())
	if got := len(b.ops(opElect)); got != 0 {
		t.Fatalf("Tick campaigned with failover disabled (%d ELECTs)", got)
	}
	if got := s.Epoch(); got != 0 {
		t.Fatalf("epoch = %d, want 0", got)
	}
	if got := reg.Snapshot().Get("total_elections_total"); got != 0 {
		t.Fatalf("total_elections_total = %d, want 0", got)
	}
}
