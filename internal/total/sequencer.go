package total

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"causalshare/internal/causal"
	"causalshare/internal/flightrec"
	"causalshare/internal/group"
	"causalshare/internal/message"
	"causalshare/internal/telemetry"
	"causalshare/internal/trace"
	"causalshare/internal/wal"
)

// seqLabelSuffix namespaces sequencer traffic.
const seqLabelSuffix = "~seq"

// SeqOrigin returns the label origin the sequencer layer uses for member's
// traffic. Rejoin harnesses need it to look up the member's delivered
// watermark at live peers when resuming the member's label chain.
func SeqOrigin(member string) string { return member + seqLabelSuffix }

// Sequencer is the fixed-sequencer implementation of ASend, extended with
// epoch-based leader succession. The leader of epoch e is the group's
// member at rank e mod n; epoch 0 therefore reproduces the paper's fixed
// rank-0 sequencer. The leader assigns a global sequence number to every
// data message it delivers, announcing it with an ORDER broadcast that
// causally depends on the data message itself; members deliver data
// messages in sequence-number order.
//
// Failover (armed by Config.FailTimeout > 0) works as follows:
//
//   - Every member broadcasts SEQHB beacons carrying its epoch and
//     delivery frontier; all sequencer-layer traffic feeds a heartbeat
//     failure detector.
//   - When a member suspects the current leader, it computes the next
//     epoch e' > e whose leader it believes alive. If that leader is
//     itself, it adopts e' and broadcasts ELECT(e'); otherwise it waits
//     for that member's campaign.
//   - A member receiving ELECT(e') with e' >= its epoch adopts e' and
//     answers with ACK(e', frontier, retained assignments). Every ORDER
//     carries the epoch it was assigned under, and members retain
//     assignments (even delivered ones) until every live peer's frontier
//     passes them, so the acks reconstruct all ordering knowledge any
//     survivor holds.
//   - Once every member alive in the candidate's view has acked, the
//     candidate merges the assignments (higher epoch wins per sequence
//     number), re-broadcasts them under the new epoch so every survivor
//     can fill gaps, and assigns fresh sequence numbers to still-
//     unsequenced holdback messages in deterministic label order.
//   - ORDER/ELECT/ACK messages from older epochs are fenced (dropped),
//     so a partitioned stale leader cannot split the order; on seeing the
//     higher epoch it demotes itself.
//
// The protocol tolerates crash failures under an eventually accurate
// detector. It does not resurrect assignments every survivor missed (a
// message only the dead leader sequenced is re-proposed with a fresh
// number), which preserves the invariant the chaos suite checks: all
// survivors deliver the identical total order. See DESIGN.md §8.
type Sequencer struct {
	self        string
	grp         *group.Group
	deliver     causal.DeliverFunc
	failTimeout time.Duration
	maxPending  int
	tracker     *group.Tracker
	detector    *group.Detector

	mu       sync.Mutex
	closed   bool
	bcast    causal.Broadcaster
	labeler  *message.Labeler
	lastSent message.Label
	// epoch is the current leadership epoch; leaderOf(epoch) assigns.
	epoch uint64
	// electing is true while self campaigns for epoch.
	electing  bool
	acked     map[string]bool
	suspectAt time.Time
	lastElect time.Time
	// Data messages received but not yet deliverable, by label.
	data map[message.Label]message.Message
	// seqOf maps assigned sequence numbers to data labels (with the epoch
	// of the assignment). With failover armed, delivered assignments are
	// retained until pruneAssignedLocked proves every live peer delivered
	// them; without it they are dropped on delivery as before.
	seqOf      map[uint64]seqAssign
	seqByLabel map[message.Label]uint64
	// frontier[p] is the highest delivery frontier (nextDeliver) peer p
	// has reported via SEQHB or ACK.
	frontier map[string]uint64
	// nextAssign is the leader's next sequence number to hand out.
	nextAssign uint64
	// nextDeliver is the next sequence number to release locally.
	nextDeliver uint64
	delivered   uint64
	// repairFloor is the min alive frontier observed at the last
	// heartbeat; a floor that stalls below nextDeliver for two beats
	// triggers the leader's retained-ORDER re-announcement.
	repairFloor uint64
	ins         totalInstruments
	trace       *telemetry.Ring
	spans       *trace.Tracer
	flight      *flightrec.Recorder
	wlog        *wal.WAL

	done     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewSequencer constructs a sequencer-layer instance for self. Bind must
// be called before the first ASend. With cfg.FailTimeout == 0 the epoch
// never advances and the rank-0 member is the fixed leader.
func NewSequencer(cfg Config) (*Sequencer, error) {
	if cfg.Group == nil || !cfg.Group.Contains(cfg.Self) {
		return nil, fmt.Errorf("total: %q is not a member of the group", cfg.Self)
	}
	if cfg.Deliver == nil {
		return nil, fmt.Errorf("total: nil deliver func")
	}
	maxPending := cfg.MaxPending
	if maxPending == 0 {
		maxPending = DefaultMaxPending
	}
	s := &Sequencer{
		self:        cfg.Self,
		grp:         cfg.Group,
		deliver:     cfg.Deliver,
		failTimeout: cfg.FailTimeout,
		maxPending:  maxPending,
		labeler:     message.NewLabeler(cfg.Self + seqLabelSuffix),
		ins:         newTotalInstruments(cfg.Telemetry),
		trace:       cfg.Trace,
		spans:       cfg.Tracer,
		flight:      cfg.Flight,
		wlog:        cfg.Journal,
		data:        make(map[message.Label]message.Message),
		seqOf:       make(map[uint64]seqAssign),
		seqByLabel:  make(map[message.Label]uint64),
		frontier:    make(map[string]uint64),
		nextAssign:  1,
		nextDeliver: 1,
		done:        make(chan struct{}),
	}
	if cfg.FailTimeout > 0 {
		s.tracker = group.NewTracker(cfg.Group)
		s.detector = group.NewDetector(s.tracker, cfg.Self, cfg.FailTimeout)
		s.detector.Prime(time.Now())
	}
	s.registerFrontierLag(cfg.Telemetry)
	s.ins.epoch.Set(0)
	if cfg.HeartbeatEvery > 0 {
		s.wg.Add(1)
		go s.heartbeatLoop(cfg.HeartbeatEvery)
	}
	return s, nil
}

// registerFrontierLag registers snapshot-time per-peer gauges exposing
// how far each peer's reported delivery frontier trails this member's
// (nextDeliver - frontier[peer]): the cross-member stability-skew signal
// causaltop merges into a cluster view. Peers that have never reported
// show the full local frontier — honest, since nothing proves they
// delivered anything.
func (s *Sequencer) registerFrontierLag(reg *telemetry.Registry) {
	fam := reg.GaugeFamily("total_member_frontier_lag",
		"Sequences this member has delivered that the peer has not yet reported delivering.",
		"peer")
	for _, p := range s.grp.Members() {
		if p == s.self {
			continue
		}
		p := p
		fam.Func(p, func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			f := s.frontier[p]
			if f == 0 {
				f = 1 // never reported: assume the initial frontier
			}
			if f < s.nextDeliver {
				return int64(s.nextDeliver - f)
			}
			return 0
		})
	}
}

// Bind attaches the underlying causal broadcaster.
func (s *Sequencer) Bind(b causal.Broadcaster) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bcast = b
}

// leaderOf maps an epoch to its leader deterministically; every member
// agrees on the mapping without communication.
func (s *Sequencer) leaderOf(epoch uint64) string {
	members := s.grp.Members()
	return members[epoch%uint64(len(members))]
}

// Epoch returns the current leadership epoch.
func (s *Sequencer) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Leader returns the member currently believed to lead.
func (s *Sequencer) Leader() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.leaderOf(s.epoch)
}

// IsLeader reports whether self leads the current epoch (and is not
// mid-election).
func (s *Sequencer) IsLeader() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.leaderOf(s.epoch) == s.self && !s.electing
}

// SyncSnapshot is the sequencer state a rejoining member copies from one
// live peer. Beyond the epoch and delivery frontier it carries the peer's
// retained undelivered assignments and its holdback of causally-delivered
// but not-yet-sequenced data: the rejoiner seeds its causal engine with
// the peer's delivered watermarks, so ORDER and data messages the peer
// absorbed before the snapshot would otherwise be skipped as old news and
// the rejoiner would stall at the first sequence number they cover.
type SyncSnapshot struct {
	Epoch       uint64
	NextDeliver uint64
	Assigns     []SyncAssign
	Data        []message.Message
}

// SyncAssign is one retained (seq -> label) assignment with the epoch it
// was made under.
type SyncAssign struct {
	Seq   uint64
	Epoch uint64
	Label message.Label
}

// SyncState exposes the snapshot a rejoining member needs to resume. The
// rejoin harness reads the peer's causal frontier FIRST and SyncState
// second: holdback entries the peer gains in between carry labels above
// the frontier and reach the rejoiner through the normal fetch path, while
// the reverse order can lose a message into the seeded watermark.
func (s *Sequencer) SyncState() SyncSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := SyncSnapshot{Epoch: s.epoch, NextDeliver: s.nextDeliver}
	// ALL retained assignments go into the snapshot, including those below
	// the local frontier: they are retained precisely because some live
	// peer has not delivered them yet, and if the rejoiner later leads an
	// election it must be able to re-announce them or that peer wedges.
	for seq, a := range s.seqOf {
		snap.Assigns = append(snap.Assigns, SyncAssign{Seq: seq, Epoch: a.epoch, Label: a.label})
	}
	sort.Slice(snap.Assigns, func(i, j int) bool { return snap.Assigns[i].Seq < snap.Assigns[j].Seq })
	for _, m := range s.data {
		snap.Data = append(snap.Data, m)
	}
	sort.Slice(snap.Data, func(i, j int) bool {
		if snap.Data[i].Label.Origin != snap.Data[j].Label.Origin {
			return snap.Data[i].Label.Origin < snap.Data[j].Label.Origin
		}
		return snap.Data[i].Label.Seq < snap.Data[j].Label.Seq
	})
	return snap
}

// Resume fast-forwards a freshly constructed instance to a snapshot taken
// from a live peer. History below the snapshot frontier was applied to the
// restored application state out of band and is never re-delivered here.
// lastLabel is the highest sequencer-layer label sequence any live peer
// has delivered from this member (the maximum delivered watermark for the
// "<self>~seq" origin across live peers), so new control traffic is not
// mistaken for duplicates of pre-crash messages. Call it after Bind and
// before any ASend.
func (s *Sequencer) Resume(snap SyncSnapshot, lastLabel uint64) {
	s.mu.Lock()
	if snap.Epoch > s.epoch {
		s.setEpochLocked(snap.Epoch)
	}
	if snap.NextDeliver > s.nextDeliver {
		s.nextDeliver = snap.NextDeliver
	}
	if snap.NextDeliver > s.nextAssign {
		s.nextAssign = snap.NextDeliver
	}
	for _, a := range snap.Assigns {
		s.mergeAssignLocked(a.Epoch, a.Seq, a.Label)
	}
	for _, m := range snap.Data {
		if _, dup := s.data[m.Label]; !dup {
			s.data[m.Label] = m
		}
	}
	// Data assigned below the resumed frontier was committed group-wide
	// while this member was down — a disk recovery can replay holdback
	// whose Commit records were cut off with the log tail. releaseLocked
	// never revisits those sequence numbers, so without this sweep the
	// entries sit in the holdback forever.
	for l, seq := range s.seqByLabel {
		if seq < s.nextDeliver {
			delete(s.data, l)
		}
	}
	s.labeler.Resume(lastLabel)
	if s.lastSent.IsNil() {
		s.lastSent = s.labeler.Last()
	}
	// If this member leads the resumed epoch, sequencing the snapshot's
	// unassigned holdback is its job — the seeded causal frontier means
	// those data messages were delivered group-wide long ago and will
	// never re-enter through ingestData, so nothing else would assign
	// them. Same deterministic label order as the election re-proposal.
	var orders []message.Message
	if s.bcast != nil && s.leaderOf(s.epoch) == s.self && !s.electing {
		for _, l := range s.unassignedCausalLocked() {
			orders = append(orders, s.assignLocked(l))
		}
	}
	b := s.bcast
	ready := s.releaseLocked()
	s.observeLocked()
	s.mu.Unlock()
	for _, m := range orders {
		_ = b.Broadcast(m)
	}
	s.deliverAll(ready)
}

// ASend broadcasts an operation for totally ordered delivery.
func (s *Sequencer) ASend(op string, kind message.Kind, body []byte, after message.OccursAfter) (message.Label, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return message.Nil, ErrClosed
	}
	if s.bcast == nil {
		s.mu.Unlock()
		return message.Nil, fmt.Errorf("total: ASend before Bind")
	}
	label := s.labeler.Next()
	deps := append([]message.Label{s.lastSent}, after.Labels()...)
	s.lastSent = label
	b := s.bcast
	s.mu.Unlock()

	m := message.Message{
		Label: label,
		Deps:  message.After(deps...),
		Kind:  kind,
		Op:    op,
		Body:  body,
	}
	if err := b.Broadcast(m); err != nil {
		return message.Nil, fmt.Errorf("total: %w", err)
	}
	return label, nil
}

// controlLocked mints a control message on the layer's self-chain. Caller
// holds mu and must broadcast the message after unlocking.
func (s *Sequencer) controlLocked(op string, body []byte, extra ...message.Label) message.Message {
	label := s.labeler.Next()
	deps := append([]message.Label{s.lastSent}, extra...)
	s.lastSent = label
	return message.Message{
		Label: label,
		Deps:  message.After(deps...),
		Kind:  message.KindControl,
		Op:    op,
		Body:  body,
	}
}

// Heartbeat broadcasts a SEQHB beacon (epoch + delivery frontier). With
// failover armed it is the leader-liveness signal and the carrier for
// retained-assignment pruning; the heartbeat loop calls it, deterministic
// tests drive it manually.
func (s *Sequencer) Heartbeat() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.bcast == nil {
		s.mu.Unlock()
		return fmt.Errorf("total: Heartbeat before Bind")
	}
	body := encodeSeqHB(s.epoch, s.nextDeliver)
	m := s.controlLocked(opSeqHB, body)
	b := s.bcast
	s.ins.heartbeats.Inc()
	s.ins.wrapBytes.Add(uint64(len(body)))
	repair := s.repairStalledLocked()
	s.mu.Unlock()
	if err := b.Broadcast(m); err != nil {
		return fmt.Errorf("total: heartbeat: %w", err)
	}
	for _, o := range repair {
		_ = b.Broadcast(o)
	}
	return nil
}

// repairStalledSeqs caps how many retained ORDERs one heartbeat may
// re-announce while a peer's frontier stalls; the next beat continues.
const repairStalledSeqs = 32

// repairStalledLocked is the steady-state safety net behind election-time
// re-proposal: if a live peer's reported frontier sits below our delivery
// point for two consecutive heartbeats, the leader re-announces the
// retained assignments in that gap under the current epoch. A follower
// can lose an ORDER without any further election happening — it may have
// fenced the announcement from an epoch it had already moved past — and
// with a stable leader nothing else would ever re-send it. Caller holds
// mu; the returned ORDERs are broadcast after unlock.
func (s *Sequencer) repairStalledLocked() []message.Message {
	if s.failTimeout <= 0 || s.electing || s.leaderOf(s.epoch) != s.self {
		return nil
	}
	floor := s.minAliveFrontierLocked()
	stalled := floor == s.repairFloor && floor < s.nextDeliver
	s.repairFloor = floor
	if !stalled {
		return nil
	}
	var out []message.Message
	for seq := floor; seq < s.nextDeliver && len(out) < repairStalledSeqs; seq++ {
		a, ok := s.seqOf[seq]
		if !ok {
			continue
		}
		a.epoch = s.epoch
		s.seqOf[seq] = a
		out = append(out, s.orderAnnouncementLocked(seq, a.label))
		s.ins.reproposed.Inc()
	}
	return out
}

// Suspect backdates peer's liveness evidence in the failover detector so
// the next Tick times it out immediately. Lower layers with direct
// failure evidence — the reliability sublayer shedding an unresponsive
// peer — feed their verdicts in here rather than waiting out the full
// heartbeat timeout; a later genuine heartbeat still heals the peer. A
// no-op when failover is disabled.
func (s *Sequencer) Suspect(peer string) {
	if s.detector == nil {
		return
	}
	s.flight.Suspect(peer)
	s.detector.Suspect(peer, time.Now())
}

// Tick evaluates failure detection and election progress as of now. The
// heartbeat loop pumps it; deterministic tests call it directly. It is a
// no-op when failover is disabled.
func (s *Sequencer) Tick(now time.Time) {
	if s.detector == nil {
		return
	}
	s.detector.Tick(now)
	var out []message.Message
	s.mu.Lock()
	if s.closed || s.bcast == nil {
		s.mu.Unlock()
		return
	}
	b := s.bcast
	leader := s.leaderOf(s.epoch)
	if !s.electing && leader != s.self && !s.tracker.Alive(leader) {
		et := s.epoch + 1
		for s.leaderOf(et) != s.self && !s.tracker.Alive(s.leaderOf(et)) {
			et++
		}
		if s.leaderOf(et) == s.self {
			out = append(out, s.startElectionLocked(et, now))
		}
		// Otherwise the live member leading et campaigns; if it too is
		// dead the detector will shrink the view and a later Tick
		// re-derives the candidate.
	}
	if s.electing {
		// A member that died mid-election shrinks the alive set, which may
		// complete the count; a lost ELECT is re-broadcast.
		if msgs := s.maybeCompleteElectionLocked(now); msgs != nil {
			out = append(out, msgs...)
		} else if now.Sub(s.lastElect) > s.failTimeout {
			s.lastElect = now
			out = append(out, s.controlLocked(opElect, encodeElect(s.epoch)))
		}
	}
	s.mu.Unlock()
	for _, m := range out {
		_ = b.Broadcast(m)
	}
}

// startElectionLocked adopts the target epoch and mints the ELECT
// announcement. Caller holds mu and broadcasts the returned message.
func (s *Sequencer) startElectionLocked(epoch uint64, now time.Time) message.Message {
	s.setEpochLocked(epoch)
	s.electing = true
	s.acked = map[string]bool{s.self: true}
	s.suspectAt = now
	s.lastElect = now
	s.ins.elections.Inc()
	return s.controlLocked(opElect, encodeElect(epoch))
}

// setEpochLocked adopts a strictly higher epoch, cancelling any inferior
// campaign. Caller holds mu.
func (s *Sequencer) setEpochLocked(epoch uint64) {
	s.epoch = epoch
	s.wlog.Epoch(epoch)
	s.electing = false
	s.acked = nil
	s.ins.epoch.Set(int64(epoch))
	s.trace.Record(telemetry.EventEpoch, s.self, "", epoch, 0)
	s.spans.EpochAdopted(epoch)
}

// maybeCompleteElectionLocked finishes the campaign once every member
// alive in the local view has acked AND the ackers (self included) form a
// strict majority of the group, returning the re-proposal ORDER broadcasts
// (nil while still waiting). The quorum clause is the split-brain guard: a
// fully partitioned member suspects everyone, campaigns, and — with only
// its own ack — would otherwise complete a solo election and sequence its
// holdback on a divergent branch. With the quorum it stays electing until
// it is reconnected, at which point the majority's acks (or a higher
// epoch) resolve the campaign safely. Caller holds mu.
func (s *Sequencer) maybeCompleteElectionLocked(now time.Time) []message.Message {
	for _, m := range s.tracker.View().Alive {
		if !s.acked[m] {
			return nil
		}
	}
	if len(s.acked) <= len(s.grp.Members())/2 {
		return nil
	}
	s.electing = false
	s.ins.failoverLat.ObserveSince(s.suspectAt)

	// Re-propose every retained assignment not yet delivered by all
	// survivors under the new epoch, so any survivor missing an ORDER can
	// fill the gap, then sequence the unassigned holdback deterministically.
	floor := s.minAliveFrontierLocked()
	seqs := make([]uint64, 0, len(s.seqOf))
	for seq := range s.seqOf {
		if seq >= floor {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	out := make([]message.Message, 0, len(seqs))
	for _, seq := range seqs {
		a := s.seqOf[seq]
		a.epoch = s.epoch
		s.seqOf[seq] = a
		out = append(out, s.orderAnnouncementLocked(seq, a.label))
		s.ins.reproposed.Inc()
	}
	for _, l := range s.unassignedCausalLocked() {
		out = append(out, s.assignLocked(l))
	}
	s.trace.Record(telemetry.EventElect, s.self, "", s.epoch, int64(len(seqs)))
	s.flight.Elect(s.epoch, len(seqs))
	s.acked = nil
	return out
}

// unassignedCausalLocked returns the holdback labels without a sequence
// number in a deterministic order that respects the messages' declared
// dependencies: a topological order over the dep edges inside the set,
// picking the smallest (origin, seq) label among the ready ones at each
// step. Plain label order is not enough — holdback from different origins
// can be causally related (a sync message reading concurrent writes), and
// assigning the successor a smaller sequence number would make the total
// order contradict the causal order the layer below guarantees. Deps on
// labels outside the set were sequenced or delivered already and count as
// satisfied. Caller holds mu.
func (s *Sequencer) unassignedCausalLocked() []message.Label {
	pending := make([]message.Label, 0, len(s.data))
	inSet := make(map[message.Label]bool, len(s.data))
	for l := range s.data {
		if _, ok := s.seqByLabel[l]; !ok {
			pending = append(pending, l)
			inSet[l] = true
		}
	}
	sort.Slice(pending, func(i, j int) bool {
		if pending[i].Origin != pending[j].Origin {
			return pending[i].Origin < pending[j].Origin
		}
		return pending[i].Seq < pending[j].Seq
	})
	out := make([]message.Label, 0, len(pending))
	done := make(map[message.Label]bool, len(pending))
	for len(out) < len(pending) {
		progressed := false
		for _, l := range pending {
			if done[l] {
				continue
			}
			ready := true
			for _, d := range s.data[l].Deps.Labels() {
				if inSet[d] && !done[d] {
					ready = false
					break
				}
			}
			if ready {
				done[l] = true
				out = append(out, l)
				progressed = true
				break // restart: smallest ready label first, deterministically
			}
		}
		if !progressed {
			// A dependency cycle cannot arise from honest labelers; if one
			// does, fall back to label order rather than stalling the epoch.
			for _, l := range pending {
				if !done[l] {
					done[l] = true
					out = append(out, l)
				}
			}
		}
	}
	return out
}

// assignLocked hands l the next sequence number under the current epoch
// and mints its ORDER announcement. Caller holds mu.
func (s *Sequencer) assignLocked(l message.Label) message.Message {
	seq := s.nextAssign
	s.nextAssign++
	s.seqOf[seq] = seqAssign{label: l, epoch: s.epoch}
	s.seqByLabel[l] = seq
	s.ins.assigned.Inc()
	return s.orderAnnouncementLocked(seq, l)
}

// orderAnnouncementLocked mints ORDER(epoch, seq, l). The announcement
// causally depends on the data message it sequences, so no member can see
// the assignment first. Caller holds mu.
func (s *Sequencer) orderAnnouncementLocked(seq uint64, l message.Label) message.Message {
	body := encodeOrder(s.epoch, seq, l)
	s.ins.orderBytes.Add(uint64(len(body)))
	return s.controlLocked(opOrder, body, l)
}

// Ingest is the DeliverFunc to register with the underlying causal engine.
func (s *Sequencer) Ingest(m message.Message) {
	member, ok := seqMemberOfLabel(s.grp, m.Label)
	if !ok {
		return // foreign traffic
	}
	if s.detector != nil && member != s.self {
		s.detector.Observe(member, time.Now())
	}
	switch m.Op {
	case opOrder:
		epoch, seq, label, err := decodeOrder(m.Body)
		if err != nil {
			return
		}
		s.ingestOrder(epoch, seq, label)
	case opSeqHB:
		epoch, nd, err := decodeSeqHB(m.Body)
		if err != nil {
			return
		}
		s.ingestSeqHB(member, epoch, nd)
	case opElect:
		epoch, err := decodeElect(m.Body)
		if err != nil {
			return
		}
		s.ingestElect(member, epoch)
	case opAck:
		epoch, nd, assigns, err := decodeAck(m.Body)
		if err != nil {
			return
		}
		s.ingestAck(member, epoch, nd, assigns)
	default:
		s.ingestData(m)
	}
}

func (s *Sequencer) ingestData(m message.Message) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if _, dup := s.data[m.Label]; dup {
		s.mu.Unlock()
		return
	}
	if s.maxPending > 0 && len(s.data) >= s.maxPending {
		// Holdback bound: without it a dead leader (failover disabled, or
		// mid-election backlog) grows this map without limit. Dropping
		// stalls this member at the dropped message's sequence number if
		// one is ever assigned — bounded memory is bought with liveness,
		// which the failover path restores by draining the queue.
		s.ins.pendingDropped.Inc()
		s.observeLocked()
		s.mu.Unlock()
		return
	}
	s.data[m.Label] = m
	s.wlog.Message(&m)
	var announce []message.Message
	if s.leaderOf(s.epoch) == s.self && !s.electing {
		if _, assigned := s.seqByLabel[m.Label]; !assigned {
			announce = append(announce, s.assignLocked(m.Label))
		}
	}
	ready := s.releaseLocked()
	s.observeLocked()
	b := s.bcast
	s.mu.Unlock()
	s.deliverAll(ready)
	for _, a := range announce {
		_ = b.Broadcast(a) // leader retries are the causal layer's concern
	}
}

// mergeAssignLocked records (seq -> label) made under epoch, resolving
// conflicts in favor of the higher epoch. Caller holds mu.
func (s *Sequencer) mergeAssignLocked(epoch, seq uint64, label message.Label) {
	s.wlog.Order(epoch, seq, label)
	if seq < s.nextDeliver {
		if _, ok := s.seqOf[seq]; !ok && s.failTimeout <= 0 {
			// Without retention nothing re-proposes old assignments, so a
			// below-frontier merge is stale by construction. With failover
			// armed it must be kept: a member resumed from a snapshot
			// taken above this seq never delivered it, yet as leader it is
			// the one that must re-announce it to peers still below it.
			// pruneAssignedLocked drops it once every live frontier is
			// past.
			return
		}
	}
	if old, ok := s.seqByLabel[label]; ok && old != seq {
		if s.seqOf[old].epoch > epoch {
			return // newer assignment for this label elsewhere
		}
		delete(s.seqOf, old)
		delete(s.seqByLabel, label)
	}
	if existing, ok := s.seqOf[seq]; ok {
		if existing.label == label {
			if epoch > existing.epoch {
				s.seqOf[seq] = seqAssign{label: label, epoch: epoch}
			}
			return
		}
		if existing.epoch >= epoch {
			return // keep the same-or-newer conflicting assignment
		}
		delete(s.seqByLabel, existing.label)
	}
	s.seqOf[seq] = seqAssign{label: label, epoch: epoch}
	s.seqByLabel[label] = seq
	if seq >= s.nextAssign {
		// Followers learn the leader's assignment frontier from ORDER
		// announcements, so their lag gauge tracks the same span.
		s.nextAssign = seq + 1
	}
}

func (s *Sequencer) ingestOrder(epoch, seq uint64, label message.Label) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if epoch < s.epoch {
		s.ins.fenced.Inc()
		s.mu.Unlock()
		return
	}
	if epoch > s.epoch {
		s.setEpochLocked(epoch)
	}
	s.spans.OrderApplied(epoch, label)
	s.mergeAssignLocked(epoch, seq, label)
	ready := s.releaseLocked()
	s.observeLocked()
	s.mu.Unlock()
	s.deliverAll(ready)
}

func (s *Sequencer) ingestSeqHB(from string, epoch, nextDeliver uint64) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if epoch > s.epoch {
		s.setEpochLocked(epoch)
	}
	if nextDeliver > s.frontier[from] {
		s.frontier[from] = nextDeliver
	}
	s.pruneAssignedLocked()
	s.mu.Unlock()
}

func (s *Sequencer) ingestElect(from string, epoch uint64) {
	s.mu.Lock()
	if s.closed || from == s.self {
		s.mu.Unlock()
		return
	}
	if epoch < s.epoch || s.leaderOf(epoch) != from {
		s.ins.fenced.Inc()
		s.mu.Unlock()
		return
	}
	if epoch > s.epoch {
		s.setEpochLocked(epoch)
	}
	ack := s.controlLocked(opAck, encodeAck(epoch, s.nextDeliver, s.seqOf))
	b := s.bcast
	s.mu.Unlock()
	if b != nil {
		_ = b.Broadcast(ack)
	}
}

func (s *Sequencer) ingestAck(from string, epoch, nextDeliver uint64, assigns map[uint64]seqAssign) {
	var out []message.Message
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if epoch < s.epoch {
		s.ins.fenced.Inc()
		s.mu.Unlock()
		return
	}
	if epoch > s.epoch {
		// An ack for a campaign we have not seen the ELECT of yet; adopt
		// the epoch, the ELECT will still be answered when it arrives.
		s.setEpochLocked(epoch)
	}
	if nextDeliver > s.frontier[from] {
		s.frontier[from] = nextDeliver
	}
	seqs := make([]uint64, 0, len(assigns))
	for seq := range assigns {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		a := assigns[seq]
		s.mergeAssignLocked(a.epoch, seq, a.label)
	}
	if s.electing && s.epoch == epoch && s.leaderOf(epoch) == s.self {
		s.acked[from] = true
		out = s.maybeCompleteElectionLocked(time.Now())
	}
	ready := s.releaseLocked()
	s.observeLocked()
	b := s.bcast
	s.mu.Unlock()
	s.deliverAll(ready)
	for _, m := range out {
		_ = b.Broadcast(m)
	}
}

// deliverAll hands released messages to the application in order, marking
// each one's total-order apply point on the trace collector first so span
// records show sequencing latency separately from causal delivery. Called
// without mu held.
func (s *Sequencer) deliverAll(ready []message.Message) {
	for _, m := range ready {
		s.spans.Apply(m.Label)
		s.deliver(m)
	}
}

// releaseLocked delivers the contiguous sequenced prefix. Caller holds mu.
func (s *Sequencer) releaseLocked() []message.Message {
	retain := s.failTimeout > 0
	var out []message.Message
	for {
		a, ok := s.seqOf[s.nextDeliver]
		if !ok {
			return out
		}
		m, ok := s.data[a.label]
		if !ok {
			return out // data not yet here (a merged assignment outran it)
		}
		if !retain {
			delete(s.seqOf, s.nextDeliver)
			delete(s.seqByLabel, a.label)
		}
		delete(s.data, a.label)
		s.nextDeliver++
		s.delivered++
		s.ins.delivered.Inc()
		out = append(out, m)
		s.wlog.Commit(s.nextDeliver)
	}
}

// maxRetainedAssigns bounds how many assignments a suspected peer may pin
// in retention. Below the cap, pruning honors every member's reported
// frontier, down-marked ones included — a false suspicion that later
// heals must still find its missing ORDERs retained somewhere, or the
// group wedges with the assignments gone from every member. Past the cap
// a peer that stayed down this long is treated as genuinely dead: pruning
// falls back to the alive-only floor, and if the peer ever returns it
// does so through the snapshot rejoin path rather than old ORDERs.
const maxRetainedAssigns = 4096

// pruneAssignedLocked drops retained assignments every member's reported
// frontier has passed; they can never be needed for a re-proposal again.
// Caller holds mu.
func (s *Sequencer) pruneAssignedLocked() {
	if s.failTimeout <= 0 {
		return
	}
	floor := s.minFrontierLocked()
	if len(s.seqOf) > maxRetainedAssigns {
		floor = s.minAliveFrontierLocked()
	}
	for seq, a := range s.seqOf {
		if seq < floor && seq < s.nextDeliver {
			delete(s.seqOf, seq)
			delete(s.seqByLabel, a.label)
		}
	}
}

// minFrontierLocked returns the lowest delivery frontier across self and
// every peer, down-marked ones included (0 if some peer has not reported
// yet). Caller holds mu.
func (s *Sequencer) minFrontierLocked() uint64 {
	floor := s.nextDeliver
	for _, p := range s.grp.Members() {
		if p == s.self {
			continue
		}
		if s.frontier[p] < floor {
			floor = s.frontier[p]
		}
	}
	return floor
}

// minAliveFrontierLocked returns the lowest delivery frontier across self
// and every peer currently believed alive (0 if some live peer has not
// reported yet). Caller holds mu.
func (s *Sequencer) minAliveFrontierLocked() uint64 {
	floor := s.nextDeliver
	for _, p := range s.grp.Members() {
		if p == s.self {
			continue
		}
		if s.tracker != nil && !s.tracker.Alive(p) {
			continue
		}
		if s.frontier[p] < floor {
			floor = s.frontier[p]
		}
	}
	return floor
}

// observeLocked refreshes the layer gauges. Caller holds mu.
func (s *Sequencer) observeLocked() {
	s.ins.lag.Set(int64(s.nextAssign - s.nextDeliver))
	s.ins.pendingDepth.Set(int64(len(s.data)))
}

// Pending returns the number of unreleased data messages.
func (s *Sequencer) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.data)
}

// Delivered returns the number of messages delivered in total order.
func (s *Sequencer) Delivered() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.delivered
}

// Close stops the heartbeat loop and marks the layer closed. The
// underlying broadcaster is caller-owned.
func (s *Sequencer) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.done) })
	s.wg.Wait()
	return nil
}

func (s *Sequencer) heartbeatLoop(every time.Duration) {
	defer s.wg.Done()
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case now := <-ticker.C:
			_ = s.Heartbeat() // best effort; retried next tick
			s.Tick(now)
		}
	}
}

// seqMemberOfLabel recovers the member id from a sequencer-layer label.
func seqMemberOfLabel(g *group.Group, l message.Label) (string, bool) {
	const n = len(seqLabelSuffix)
	if len(l.Origin) <= n || l.Origin[len(l.Origin)-n:] != seqLabelSuffix {
		return "", false
	}
	member := l.Origin[:len(l.Origin)-n]
	if !g.Contains(member) {
		return "", false
	}
	return member, true
}
