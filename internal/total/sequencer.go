package total

import (
	"encoding/binary"
	"fmt"
	"sync"

	"causalshare/internal/causal"
	"causalshare/internal/group"
	"causalshare/internal/message"
)

// seqLabelSuffix namespaces sequencer traffic.
const seqLabelSuffix = "~seq"

// Sequencer is the fixed-sequencer implementation of ASend: the group's
// rank-0 member assigns a global sequence number to every data message it
// delivers, announcing it with an ORDER broadcast that causally depends on
// the data message itself. Members deliver data messages in sequence-
// number order. Compared with Orderer it costs one extra broadcast per
// message but needs no heartbeats and holds back only unsequenced data.
type Sequencer struct {
	self    string
	grp     *group.Group
	leader  string
	deliver causal.DeliverFunc

	mu       sync.Mutex
	closed   bool
	bcast    causal.Broadcaster
	labeler  *message.Labeler
	lastSent message.Label
	// Data messages received but not yet deliverable, by label.
	data map[message.Label]message.Message
	// seqOf maps assigned sequence numbers to data labels.
	seqOf map[uint64]message.Label
	// nextAssign is the leader's next sequence number to hand out.
	nextAssign uint64
	// nextDeliver is the next sequence number to release locally.
	nextDeliver uint64
	delivered   uint64
	ins         totalInstruments
}

// NewSequencer constructs a sequencer-layer instance for self. The leader
// is the group's rank-0 member at every instance, so no election is
// needed. Bind must be called before the first ASend.
func NewSequencer(cfg Config) (*Sequencer, error) {
	if cfg.Group == nil || !cfg.Group.Contains(cfg.Self) {
		return nil, fmt.Errorf("total: %q is not a member of the group", cfg.Self)
	}
	if cfg.Deliver == nil {
		return nil, fmt.Errorf("total: nil deliver func")
	}
	return &Sequencer{
		self:        cfg.Self,
		grp:         cfg.Group,
		leader:      cfg.Group.Members()[0],
		deliver:     cfg.Deliver,
		labeler:     message.NewLabeler(cfg.Self + seqLabelSuffix),
		ins:         newTotalInstruments(cfg.Telemetry),
		data:        make(map[message.Label]message.Message),
		seqOf:       make(map[uint64]message.Label),
		nextAssign:  1,
		nextDeliver: 1,
	}, nil
}

// Bind attaches the underlying causal broadcaster.
func (s *Sequencer) Bind(b causal.Broadcaster) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bcast = b
}

// ASend broadcasts an operation for totally ordered delivery.
func (s *Sequencer) ASend(op string, kind message.Kind, body []byte, after message.OccursAfter) (message.Label, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return message.Nil, ErrClosed
	}
	if s.bcast == nil {
		s.mu.Unlock()
		return message.Nil, fmt.Errorf("total: ASend before Bind")
	}
	label := s.labeler.Next()
	deps := append([]message.Label{s.lastSent}, after.Labels()...)
	s.lastSent = label
	b := s.bcast
	s.mu.Unlock()

	m := message.Message{
		Label: label,
		Deps:  message.After(deps...),
		Kind:  kind,
		Op:    op,
		Body:  body,
	}
	if err := b.Broadcast(m); err != nil {
		return message.Nil, fmt.Errorf("total: %w", err)
	}
	return label, nil
}

// Ingest is the DeliverFunc to register with the underlying causal engine.
func (s *Sequencer) Ingest(m message.Message) {
	if m.Op == opOrder {
		seq, label, err := decodeOrder(m.Body)
		if err != nil {
			return
		}
		s.ingestOrder(seq, label)
		return
	}
	if _, ok := seqMemberOfLabel(s.grp, m.Label); !ok {
		return // foreign traffic
	}
	s.ingestData(m)
}

func (s *Sequencer) ingestData(m message.Message) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if _, dup := s.data[m.Label]; dup {
		s.mu.Unlock()
		return
	}
	s.data[m.Label] = m
	var announce []message.Message
	if s.self == s.leader {
		seq := s.nextAssign
		s.nextAssign++
		chain := s.lastSent
		label := s.labeler.Next()
		s.lastSent = label
		body := encodeOrder(seq, m.Label)
		s.ins.assigned.Inc()
		s.ins.orderBytes.Add(uint64(len(body)))
		announce = append(announce, message.Message{
			Label: label,
			// The ORDER message causally depends on the data message it
			// sequences, so no member can see the assignment first.
			Deps: message.After(chain, m.Label),
			Kind: message.KindControl,
			Op:   opOrder,
			Body: body,
		})
	}
	ready := s.releaseLocked()
	s.observeLocked()
	b := s.bcast
	s.mu.Unlock()
	for _, r := range ready {
		s.deliver(r)
	}
	for _, a := range announce {
		_ = b.Broadcast(a) // leader retries are the causal layer's concern
	}
}

func (s *Sequencer) ingestOrder(seq uint64, label message.Label) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.seqOf[seq] = label
	if seq >= s.nextAssign {
		// Followers learn the leader's assignment frontier from ORDER
		// announcements, so their lag gauge tracks the same span.
		s.nextAssign = seq + 1
	}
	ready := s.releaseLocked()
	s.observeLocked()
	s.mu.Unlock()
	for _, r := range ready {
		s.deliver(r)
	}
}

// releaseLocked delivers the contiguous sequenced prefix. Caller holds mu.
func (s *Sequencer) releaseLocked() []message.Message {
	var out []message.Message
	for {
		label, ok := s.seqOf[s.nextDeliver]
		if !ok {
			return out
		}
		m, ok := s.data[label]
		if !ok {
			return out // data not yet here (only possible pre-Bind races)
		}
		delete(s.seqOf, s.nextDeliver)
		delete(s.data, label)
		s.nextDeliver++
		s.delivered++
		s.ins.delivered.Inc()
		out = append(out, m)
	}
}

// observeLocked refreshes the layer gauges. Caller holds mu.
func (s *Sequencer) observeLocked() {
	s.ins.lag.Set(int64(s.nextAssign - s.nextDeliver))
	s.ins.pendingDepth.Set(int64(len(s.data)))
}

// Pending returns the number of unreleased data messages.
func (s *Sequencer) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.data)
}

// Delivered returns the number of messages delivered in total order.
func (s *Sequencer) Delivered() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.delivered
}

// Close marks the layer closed. The underlying broadcaster is caller-owned.
func (s *Sequencer) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

func encodeOrder(seq uint64, l message.Label) []byte {
	size := uvarintLen(seq) + uvarintLen(uint64(len(l.Origin))) + len(l.Origin) + uvarintLen(l.Seq)
	buf := binary.AppendUvarint(make([]byte, 0, size), seq)
	buf = binary.AppendUvarint(buf, uint64(len(l.Origin)))
	buf = append(buf, l.Origin...)
	return binary.AppendUvarint(buf, l.Seq)
}

func decodeOrder(data []byte) (uint64, message.Label, error) {
	seq, used := binary.Uvarint(data)
	if used <= 0 {
		return 0, message.Nil, fmt.Errorf("total: truncated order seq")
	}
	data = data[used:]
	n, used := binary.Uvarint(data)
	if used <= 0 || uint64(len(data)-used) < n {
		return 0, message.Nil, fmt.Errorf("total: truncated order origin")
	}
	origin := string(data[used : used+int(n)])
	data = data[used+int(n):]
	ls, used := binary.Uvarint(data)
	if used <= 0 {
		return 0, message.Nil, fmt.Errorf("total: truncated order label seq")
	}
	return seq, message.Label{Origin: origin, Seq: ls}, nil
}

// seqMemberOfLabel recovers the member id from a sequencer-layer label.
func seqMemberOfLabel(g *group.Group, l message.Label) (string, bool) {
	const n = len(seqLabelSuffix)
	if len(l.Origin) <= n || l.Origin[len(l.Origin)-n:] != seqLabelSuffix {
		return "", false
	}
	member := l.Origin[:len(l.Origin)-n]
	if !g.Contains(member) {
		return "", false
	}
	return member, true
}
