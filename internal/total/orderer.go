package total

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"causalshare/internal/causal"
	"causalshare/internal/flightrec"
	"causalshare/internal/wal"
	"causalshare/internal/group"
	"causalshare/internal/message"
	"causalshare/internal/telemetry"
	"causalshare/internal/trace"
	"causalshare/internal/vclock"
)

// Config parameterizes a total-order layer instance.
type Config struct {
	// Self is the local member id.
	Self string
	// Group is the ordering domain; every member must run an instance.
	Group *group.Group
	// Deliver receives messages in the agreed total order. Heartbeats and
	// internal control traffic are filtered out.
	Deliver causal.DeliverFunc
	// HeartbeatEvery, when positive, starts a ticker that broadcasts a
	// liveness stamp so quiet members do not stall delivery. Zero leaves
	// heartbeating to explicit Heartbeat calls (deterministic tests and
	// the simulator drive it manually). For the Sequencer the same ticker
	// also pumps the failure detector (Tick).
	HeartbeatEvery time.Duration
	// FailTimeout, when positive, arms sequencer failover: a leader whose
	// traffic goes silent for longer than FailTimeout is suspected and the
	// next live member in group order campaigns for the succeeding epoch.
	// Zero disables failover entirely (the pre-failover fixed-sequencer
	// behavior: a leader crash stalls total order). It should be several
	// multiples of HeartbeatEvery. Ignored by the Orderer.
	FailTimeout time.Duration
	// MaxPending bounds the sequencer's holdback of data messages awaiting
	// a sequence number. With a dead leader and failover disabled the
	// holdback would otherwise grow without limit; at the bound further
	// data messages are dropped (counted in total_pending_dropped_total),
	// sacrificing liveness for bounded memory. Zero selects
	// DefaultMaxPending; negative means unbounded. Ignored by the Orderer.
	MaxPending int
	// Telemetry, when non-nil, registers the layer's total_* instruments
	// there; instances sharing a registry aggregate.
	Telemetry *telemetry.Registry
	// Trace, when non-nil, receives epoch/election events (Sequencer only).
	Trace *telemetry.Ring
	// Tracer, when non-nil, records span lifecycle events for the causal
	// trace collector: total-order apply points, adopted epochs, and ORDER
	// application (the online epoch-fence audit input). Sequencer only.
	Tracer *trace.Tracer
	// Flight, when non-nil, is this member's black-box flight recorder;
	// the layer records completed elections and failure-detector
	// suspicions there (epoch adoptions reach the box via the trace
	// collector). Sequencer only.
	Flight *flightrec.Recorder
	// Journal, when non-nil, is the member's write-ahead log. The
	// sequencer journals enough to rebuild its ordering state on restart:
	// holdback payloads, sequence assignments, epoch adoptions, and
	// delivery-frontier advances. Nil disables durability at zero cost.
	Journal *wal.WAL
}

// DefaultMaxPending is the sequencer holdback bound used when
// Config.MaxPending is zero.
const DefaultMaxPending = 8192

// Orderer is the decentralized deterministic-merge implementation of
// ASend. All members observe the same set of stamped messages (causal
// broadcast below guarantees dissemination and per-sender FIFO via
// self-chaining), sort them by (Lamport time, member id), and deliver a
// message once no member can still produce a smaller stamp.
type Orderer struct {
	self    string
	grp     *group.Group
	deliver causal.DeliverFunc

	mu       sync.Mutex
	closed   bool
	bcast    causal.Broadcaster
	labeler  *message.Labeler
	lamport  vclock.Lamport
	lastSent message.Label // self-chain predecessor
	holdback []stampedMsg
	// horizon[p] is the greatest stamp time observed from member p.
	horizon map[string]uint64
	// delivered counts messages handed to the application.
	delivered uint64
	ins       totalInstruments

	done     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

type stampedMsg struct {
	stamp vclock.Stamp
	msg   message.Message
	hb    bool
}

// New constructs an orderer. Bind must be called with the underlying
// causal broadcaster before the first ASend; the orderer's Ingest method
// is the DeliverFunc to hand to that broadcaster.
func New(cfg Config) (*Orderer, error) {
	if cfg.Group == nil || !cfg.Group.Contains(cfg.Self) {
		return nil, fmt.Errorf("total: %q is not a member of the group", cfg.Self)
	}
	if cfg.Deliver == nil {
		return nil, fmt.Errorf("total: nil deliver func")
	}
	o := &Orderer{
		self:    cfg.Self,
		grp:     cfg.Group,
		deliver: cfg.Deliver,
		labeler: message.NewLabeler(cfg.Self + labelSuffix),
		ins:     newTotalInstruments(cfg.Telemetry),
		horizon: make(map[string]uint64, cfg.Group.Size()),
		done:    make(chan struct{}),
	}
	if cfg.HeartbeatEvery > 0 {
		o.wg.Add(1)
		go o.heartbeatLoop(cfg.HeartbeatEvery)
	}
	return o, nil
}

// Bind attaches the underlying causal broadcaster. It must be called
// exactly once, before the first ASend or Heartbeat.
func (o *Orderer) Bind(b causal.Broadcaster) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.bcast = b
}

// ASend broadcasts an operation for totally ordered delivery. The after
// predicate carries any application-level causal constraint (the paper's
// ASend({m}, OccursAfter(Msg))); the layer adds its own self-chain
// dependency so the causal engine preserves per-sender FIFO, which the
// merge correctness depends on.
func (o *Orderer) ASend(op string, kind message.Kind, body []byte, after message.OccursAfter) (message.Label, error) {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return message.Nil, ErrClosed
	}
	if o.bcast == nil {
		o.mu.Unlock()
		return message.Nil, fmt.Errorf("total: ASend before Bind")
	}
	stamp := o.lamport.Tick()
	label := o.labeler.Next()
	deps := append([]message.Label{o.lastSent}, after.Labels()...)
	o.lastSent = label
	b := o.bcast
	o.mu.Unlock()

	m := message.Message{
		Label: label,
		Deps:  message.After(deps...),
		Kind:  kind,
		Op:    op,
		Body:  wrapBody(stamp, body),
	}
	o.ins.wrapBytes.Add(uint64(uvarintLen(stamp)))
	if err := b.Broadcast(m); err != nil {
		return message.Nil, fmt.Errorf("total: %w", err)
	}
	return label, nil
}

// Heartbeat broadcasts a liveness stamp so other members can release
// messages ordered before it. It is cheap and idempotent.
func (o *Orderer) Heartbeat() error {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return ErrClosed
	}
	if o.bcast == nil {
		o.mu.Unlock()
		return fmt.Errorf("total: Heartbeat before Bind")
	}
	stamp := o.lamport.Tick()
	label := o.labeler.Next()
	dep := o.lastSent
	o.lastSent = label
	b := o.bcast
	o.mu.Unlock()

	m := message.Message{
		Label: label,
		Deps:  message.After(dep),
		Kind:  message.KindControl,
		Op:    opHeartbeat,
		Body:  wrapBody(stamp, nil),
	}
	o.ins.heartbeats.Inc()
	o.ins.wrapBytes.Add(uint64(uvarintLen(stamp)))
	if err := b.Broadcast(m); err != nil {
		return fmt.Errorf("total: heartbeat: %w", err)
	}
	return nil
}

// Ingest is the DeliverFunc to register with the underlying causal engine.
// It consumes causally ordered traffic and re-delivers it in total order.
func (o *Orderer) Ingest(m message.Message) {
	member, ok := memberOfLabel(o.grp, m.Label)
	if !ok {
		return // not total-layer traffic; ignore
	}
	stampTime, body, err := unwrapBody(m.Body)
	if err != nil {
		return
	}
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return
	}
	o.lamport.Witness(stampTime)
	if stampTime > o.horizon[member] {
		o.horizon[member] = stampTime
	}
	entry := stampedMsg{
		stamp: vclock.Stamp{Time: stampTime, Proc: member},
		msg: message.Message{
			Label: m.Label,
			Deps:  m.Deps,
			Kind:  m.Kind,
			Op:    m.Op,
			Body:  body,
		},
		hb: m.Op == opHeartbeat,
	}
	i := sort.Search(len(o.holdback), func(i int) bool {
		return entry.stamp.Less(o.holdback[i].stamp)
	})
	o.holdback = append(o.holdback, stampedMsg{})
	copy(o.holdback[i+1:], o.holdback[i:])
	o.holdback[i] = entry
	ready := o.releaseLocked()
	o.ins.holdback.Set(int64(len(o.holdback)))
	o.mu.Unlock()
	for _, r := range ready {
		o.deliver(r)
	}
}

// releaseLocked pops the holdback prefix whose stamps every member's
// horizon has passed. Caller holds o.mu.
func (o *Orderer) releaseLocked() []message.Message {
	var out []message.Message
	for len(o.holdback) > 0 {
		head := o.holdback[0]
		if !o.stableLocked(head.stamp) {
			break
		}
		o.holdback = o.holdback[1:]
		if !head.hb {
			o.delivered++
			o.ins.delivered.Inc()
			out = append(out, head.msg)
		}
	}
	return out
}

// stableLocked reports whether no member can still emit a stamp ordering
// before s: every member's horizon is at or past s.Time (a member's next
// stamp is strictly greater than its horizon).
func (o *Orderer) stableLocked(s vclock.Stamp) bool {
	for _, p := range o.grp.Members() {
		if p == s.Proc {
			continue
		}
		if o.horizon[p] < s.Time {
			return false
		}
	}
	return true
}

// Pending returns the current holdback size (experiment metric).
func (o *Orderer) Pending() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.holdback)
}

// Delivered returns the number of application messages delivered in total
// order.
func (o *Orderer) Delivered() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.delivered
}

// Close stops the heartbeat loop. It does not close the underlying
// broadcaster, which the caller owns.
func (o *Orderer) Close() error {
	o.mu.Lock()
	o.closed = true
	o.mu.Unlock()
	o.stopOnce.Do(func() { close(o.done) })
	o.wg.Wait()
	return nil
}

func (o *Orderer) heartbeatLoop(every time.Duration) {
	defer o.wg.Done()
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-o.done:
			return
		case <-ticker.C:
			_ = o.Heartbeat() // best effort; retried next tick
		}
	}
}

// memberOfLabel recovers the member id from a total-layer label origin
// ("<member>~total"), reporting false for foreign labels.
func memberOfLabel(g *group.Group, l message.Label) (string, bool) {
	const n = len(labelSuffix)
	if len(l.Origin) <= n || l.Origin[len(l.Origin)-n:] != labelSuffix {
		return "", false
	}
	member := l.Origin[:len(l.Origin)-n]
	if !g.Contains(member) {
		return "", false
	}
	return member, true
}
