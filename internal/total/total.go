// Package total implements the paper's ASend construct (§5.2, Figure 4): a
// functional layer interposed between causal broadcast and the application
// that (i) imposes an arbitrary delivery order on messages generated
// spontaneously by members, and (ii) enforces that order identically at
// all members.
//
// Two implementations are provided, both layered on a causal.Broadcaster:
//
//   - Orderer: decentralized deterministic merge. Messages carry Lamport
//     stamps; a member delivers a message once every other member's stamp
//     horizon has passed it, in (time, member) order. No extra messages
//     are needed when all members are chatty (the arbitration workload of
//     §6.2); heartbeats provide liveness otherwise.
//   - Sequencer: a fixed member assigns global sequence numbers with
//     control broadcasts; members deliver in sequence order. One extra
//     broadcast per message, but constant holdback state.
//
// Both totally order only the traffic routed through them; the
// application may keep using the causal layer directly for messages whose
// ordering it can express with OccursAfter — the mixed regime the paper
// advocates.
package total

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrClosed is returned by operations on a closed orderer.
var ErrClosed = errors.New("total: closed")

// opHeartbeat is the Op of liveness messages the layer injects; they are
// consumed internally and never reach the application.
const opHeartbeat = "__total.hb"

// opOrder is the Op of sequencer ordering announcements.
const opOrder = "__total.order"

// opSeqHB is the Op of sequencer-layer liveness beacons. They carry the
// sender's epoch and delivery frontier: the epoch lets lagging members
// adopt the current leadership, the frontier drives retained-assignment
// pruning and lets a rejoining member fast-forward.
const opSeqHB = "__total.seqhb"

// opElect is the Op a succession candidate broadcasts to claim a new
// epoch. Receivers that accept the claim answer with opAck.
const opElect = "__total.elect"

// opAck is the Op of election acknowledgements: the acker's delivery
// frontier plus every retained sequence assignment, so the candidate can
// merge the group's ordering knowledge before re-proposing.
const opAck = "__total.ack"

// labelSuffix namespaces the layer's labeler away from application labels
// issued by the same member.
const labelSuffix = "~total"

// wrapBody prepends the Lamport stamp time to the application body. The
// buffer is sized exactly, so wrapping costs a single right-sized
// allocation on the broadcast hot path.
func wrapBody(stamp uint64, body []byte) []byte {
	buf := make([]byte, 0, uvarintLen(stamp)+len(body))
	buf = binary.AppendUvarint(buf, stamp)
	return append(buf, body...)
}

// uvarintLen returns the number of bytes binary.AppendUvarint emits for x.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// unwrapBody splits a wrapped body into stamp time and application body.
func unwrapBody(data []byte) (uint64, []byte, error) {
	stamp, used := binary.Uvarint(data)
	if used <= 0 {
		return 0, nil, fmt.Errorf("total: truncated stamp")
	}
	return stamp, data[used:], nil
}
