package total

import "causalshare/internal/telemetry"

// totalInstruments are the layer's registry-backed instruments, shared by
// both ASend implementations (instances on one registry aggregate). All
// fields are nil no-ops when the layer was built without a registry.
type totalInstruments struct {
	delivered    *telemetry.Counter
	assigned     *telemetry.Counter
	lag          *telemetry.Gauge
	pendingDepth *telemetry.Gauge
	holdback     *telemetry.Gauge
	heartbeats   *telemetry.Counter
	orderBytes   *telemetry.Counter
	wrapBytes    *telemetry.Counter
}

func newTotalInstruments(reg *telemetry.Registry) totalInstruments {
	return totalInstruments{
		delivered: reg.Counter("total_delivered_total",
			"Messages delivered to the application in the agreed total order."),
		assigned: reg.Counter("total_sequencer_assigned_total",
			"Sequence numbers the leader has assigned."),
		lag: reg.Gauge("total_sequencer_lag",
			"Assigned-but-undelivered span at this member (nextAssign - nextDeliver)."),
		pendingDepth: reg.Gauge("total_pending_depth",
			"Data messages held back awaiting their sequence number."),
		holdback: reg.Gauge("total_holdback_depth",
			"Stamped messages held back awaiting horizon stability."),
		heartbeats: reg.Counter("total_heartbeats_total",
			"Liveness stamps broadcast by this member."),
		orderBytes: reg.Counter("total_order_bytes_total",
			"Bytes of ORDER announcements the leader broadcast."),
		wrapBytes: reg.Counter("total_order_wrap_bytes_total",
			"Lamport-stamp bytes prepended to application bodies (order-wrap overhead)."),
	}
}
