package total

import "causalshare/internal/telemetry"

// totalInstruments are the layer's registry-backed instruments, shared by
// both ASend implementations (instances on one registry aggregate). All
// fields are nil no-ops when the layer was built without a registry.
type totalInstruments struct {
	delivered      *telemetry.Counter
	assigned       *telemetry.Counter
	lag            *telemetry.Gauge
	pendingDepth   *telemetry.Gauge
	holdback       *telemetry.Gauge
	heartbeats     *telemetry.Counter
	orderBytes     *telemetry.Counter
	wrapBytes      *telemetry.Counter
	epoch          *telemetry.Gauge
	elections      *telemetry.Counter
	failoverLat    *telemetry.Histogram
	fenced         *telemetry.Counter
	reproposed     *telemetry.Counter
	pendingDropped *telemetry.Counter
}

// failoverBuckets spans detector timeouts from sub-millisecond test
// configs to multi-second production ones.
var failoverBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

func newTotalInstruments(reg *telemetry.Registry) totalInstruments {
	return totalInstruments{
		delivered: reg.Counter("total_delivered_total",
			"Messages delivered to the application in the agreed total order."),
		assigned: reg.Counter("total_sequencer_assigned_total",
			"Sequence numbers the leader has assigned."),
		lag: reg.Gauge("total_sequencer_lag",
			"Assigned-but-undelivered span at this member (nextAssign - nextDeliver)."),
		pendingDepth: reg.Gauge("total_pending_depth",
			"Data messages held back awaiting their sequence number."),
		holdback: reg.Gauge("total_holdback_depth",
			"Stamped messages held back awaiting horizon stability."),
		heartbeats: reg.Counter("total_heartbeats_total",
			"Liveness stamps broadcast by this member."),
		orderBytes: reg.Counter("total_order_bytes_total",
			"Bytes of ORDER announcements the leader broadcast."),
		wrapBytes: reg.Counter("total_order_wrap_bytes_total",
			"Lamport-stamp bytes prepended to application bodies (order-wrap overhead)."),
		epoch: reg.Gauge("total_epoch",
			"Current sequencer leadership epoch at this member."),
		elections: reg.Counter("total_elections_total",
			"Leader-succession campaigns this member started."),
		failoverLat: reg.Histogram("total_failover_latency_seconds",
			"Leader suspicion to election completion at the new leader.",
			failoverBuckets),
		fenced: reg.Counter("total_order_fenced_total",
			"Stale-epoch ORDER/ELECT/ACK announcements dropped by fencing."),
		reproposed: reg.Counter("total_reproposed_total",
			"Retained assignments re-announced under a new epoch after election."),
		pendingDropped: reg.Counter("total_pending_dropped_total",
			"Data messages dropped at the MaxPending holdback bound."),
	}
}
