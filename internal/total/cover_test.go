package total

import (
	"testing"

	"causalshare/internal/group"
	"causalshare/internal/message"
)

func TestOrdererPendingAndDeliveredCounters(t *testing.T) {
	// Drive the orderer directly through Ingest (no network): a message
	// from member b sits in holdback until member c's horizon passes it.
	grp := group.MustNew("g", []string{"a", "b", "c"})
	delivered := 0
	o, err := New(Config{Self: "a", Group: grp, Deliver: func(message.Message) { delivered++ }})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = o.Close() }()
	ingest := func(member string, seq, stamp uint64, hb bool) {
		op := "work"
		if hb {
			op = opHeartbeat
		}
		o.Ingest(message.Message{
			Label: message.Label{Origin: member + labelSuffix, Seq: seq},
			Kind:  message.KindNonCommutative,
			Op:    op,
			Body:  wrapBody(stamp, nil),
		})
	}
	ingest("b", 1, 5, false)
	if got := o.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1 (no horizons from a or c yet)", got)
	}
	if o.Delivered() != 0 || delivered != 0 {
		t.Fatal("released before stability")
	}
	ingest("c", 1, 9, true) // c's horizon passes 5; a's (self) still behind
	if o.Delivered() != 0 {
		t.Fatal("released without self horizon")
	}
	ingest("a", 1, 9, true) // self heartbeat loops back, horizon passes 5
	if o.Delivered() != 1 || delivered != 1 {
		t.Fatalf("Delivered = %d (cb %d), want 1", o.Delivered(), delivered)
	}
	if got := o.Pending(); got > 2 {
		t.Errorf("Pending = %d after release", got)
	}
}

func TestOrdererIgnoresForeignAndMalformed(t *testing.T) {
	grp := group.MustNew("g", []string{"a", "b"})
	o, err := New(Config{Self: "a", Group: grp, Deliver: func(message.Message) {
		t.Error("foreign traffic delivered")
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = o.Close() }()
	// Not a total-layer label.
	o.Ingest(message.Message{Label: message.Label{Origin: "b", Seq: 1}, Kind: message.KindCommutative, Op: "x"})
	// Total-layer label of a non-member.
	o.Ingest(message.Message{Label: message.Label{Origin: "zz" + labelSuffix, Seq: 1}, Kind: message.KindControl, Op: "x"})
	// Malformed body (no stamp).
	o.Ingest(message.Message{Label: message.Label{Origin: "b" + labelSuffix, Seq: 1}, Kind: message.KindControl, Op: "x"})
	if o.Pending() != 0 {
		t.Errorf("Pending = %d after garbage", o.Pending())
	}
}

func TestSequencerPendingCounter(t *testing.T) {
	grp := group.MustNew("g", []string{"a", "b"})
	// Self is b (not the leader), so data waits for an ORDER that never
	// comes in this direct-drive test.
	s, err := NewSequencer(Config{Self: "b", Group: grp, Deliver: func(message.Message) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	s.Ingest(message.Message{
		Label: message.Label{Origin: "a" + seqLabelSuffix, Seq: 1},
		Kind:  message.KindNonCommutative,
		Op:    "w",
	})
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1", got)
	}
	if s.Delivered() != 0 {
		t.Fatal("delivered without sequencing")
	}
}

func TestSeqMemberOfLabel(t *testing.T) {
	grp := group.MustNew("g", []string{"alpha", "beta"})
	tests := []struct {
		origin string
		member string
		ok     bool
	}{
		{"alpha" + seqLabelSuffix, "alpha", true},
		{"beta" + seqLabelSuffix, "beta", true},
		{"gamma" + seqLabelSuffix, "", false}, // not a member
		{"alpha", "", false},                  // no suffix
		{seqLabelSuffix, "", false},           // empty member
		{"alpha~total", "", false},            // wrong suffix
	}
	for _, tt := range tests {
		member, ok := seqMemberOfLabel(grp, message.Label{Origin: tt.origin, Seq: 1})
		if ok != tt.ok || member != tt.member {
			t.Errorf("seqMemberOfLabel(%q) = %q, %v; want %q, %v",
				tt.origin, member, ok, tt.member, tt.ok)
		}
	}
}

func TestMemberOfLabel(t *testing.T) {
	grp := group.MustNew("g", []string{"alpha"})
	if m, ok := memberOfLabel(grp, message.Label{Origin: "alpha" + labelSuffix, Seq: 1}); !ok || m != "alpha" {
		t.Errorf("memberOfLabel = %q, %v", m, ok)
	}
	for _, origin := range []string{"alpha", "x" + labelSuffix, labelSuffix, "alpha~seq"} {
		if _, ok := memberOfLabel(grp, message.Label{Origin: origin, Seq: 1}); ok {
			t.Errorf("memberOfLabel accepted %q", origin)
		}
	}
}

func TestDecodeOrderErrors(t *testing.T) {
	valid := encodeOrder(2, 7, message.Label{Origin: "a~seq", Seq: 3})
	epoch, seq, l, err := decodeOrder(valid)
	if err != nil || epoch != 2 || seq != 7 || l.Seq != 3 {
		t.Fatalf("decodeOrder(valid) = %d, %d, %v, %v", epoch, seq, l, err)
	}
	for _, data := range [][]byte{nil, valid[:1], valid[:3], valid[:len(valid)-1]} {
		if _, _, _, err := decodeOrder(data); err == nil {
			t.Errorf("decodeOrder accepted truncated input %x", data)
		}
	}
}

func TestUnwrapBodyErrors(t *testing.T) {
	if _, _, err := unwrapBody(nil); err == nil {
		t.Error("empty body accepted")
	}
	stamp, rest, err := unwrapBody(wrapBody(42, []byte("xy")))
	if err != nil || stamp != 42 || string(rest) != "xy" {
		t.Errorf("unwrap = %d, %q, %v", stamp, rest, err)
	}
}
