package total

import (
	"encoding/binary"
	"fmt"

	"causalshare/internal/message"
)

// Sequencer control-plane wire formats. All are uvarint-packed like the
// message codec; every format leads with the sender's epoch so stale-
// leader traffic can be fenced before any state is touched.
//
//	ORDER  = epoch seq originLen origin labelSeq
//	ELECT  = epoch
//	ACK    = epoch nextDeliver count (seq assignEpoch originLen origin labelSeq)*
//	SEQHB  = epoch nextDeliver

// seqAssign is one sequence-number assignment with the epoch it was made
// (or last re-proposed) under. Higher epochs win on merge.
type seqAssign struct {
	label message.Label
	epoch uint64
}

func appendLabel(buf []byte, l message.Label) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(l.Origin)))
	buf = append(buf, l.Origin...)
	return binary.AppendUvarint(buf, l.Seq)
}

func readLabel(data []byte) (message.Label, []byte, error) {
	n, used := binary.Uvarint(data)
	if used <= 0 || uint64(len(data)-used) < n {
		return message.Nil, nil, fmt.Errorf("total: truncated label origin")
	}
	origin := string(data[used : used+int(n)])
	data = data[used+int(n):]
	seq, used := binary.Uvarint(data)
	if used <= 0 {
		return message.Nil, nil, fmt.Errorf("total: truncated label seq")
	}
	return message.Label{Origin: origin, Seq: seq}, data[used:], nil
}

func encodeOrder(epoch, seq uint64, l message.Label) []byte {
	size := uvarintLen(epoch) + uvarintLen(seq) +
		uvarintLen(uint64(len(l.Origin))) + len(l.Origin) + uvarintLen(l.Seq)
	buf := binary.AppendUvarint(make([]byte, 0, size), epoch)
	buf = binary.AppendUvarint(buf, seq)
	return appendLabel(buf, l)
}

func decodeOrder(data []byte) (epoch, seq uint64, l message.Label, err error) {
	epoch, used := binary.Uvarint(data)
	if used <= 0 {
		return 0, 0, message.Nil, fmt.Errorf("total: truncated order epoch")
	}
	data = data[used:]
	seq, used = binary.Uvarint(data)
	if used <= 0 {
		return 0, 0, message.Nil, fmt.Errorf("total: truncated order seq")
	}
	l, rest, err := readLabel(data[used:])
	if err != nil {
		return 0, 0, message.Nil, err
	}
	if len(rest) != 0 {
		return 0, 0, message.Nil, fmt.Errorf("total: %d trailing order bytes", len(rest))
	}
	return epoch, seq, l, nil
}

func encodeElect(epoch uint64) []byte {
	return binary.AppendUvarint(make([]byte, 0, uvarintLen(epoch)), epoch)
}

func decodeElect(data []byte) (uint64, error) {
	epoch, used := binary.Uvarint(data)
	if used <= 0 || used != len(data) {
		return 0, fmt.Errorf("total: malformed elect body")
	}
	return epoch, nil
}

func encodeAck(epoch, nextDeliver uint64, assigns map[uint64]seqAssign) []byte {
	buf := binary.AppendUvarint(nil, epoch)
	buf = binary.AppendUvarint(buf, nextDeliver)
	buf = binary.AppendUvarint(buf, uint64(len(assigns)))
	for seq, a := range assigns {
		buf = binary.AppendUvarint(buf, seq)
		buf = binary.AppendUvarint(buf, a.epoch)
		buf = appendLabel(buf, a.label)
	}
	return buf
}

func decodeAck(data []byte) (epoch, nextDeliver uint64, assigns map[uint64]seqAssign, err error) {
	epoch, used := binary.Uvarint(data)
	if used <= 0 {
		return 0, 0, nil, fmt.Errorf("total: truncated ack epoch")
	}
	data = data[used:]
	nextDeliver, used = binary.Uvarint(data)
	if used <= 0 {
		return 0, 0, nil, fmt.Errorf("total: truncated ack frontier")
	}
	data = data[used:]
	count, used := binary.Uvarint(data)
	if used <= 0 {
		return 0, 0, nil, fmt.Errorf("total: truncated ack count")
	}
	data = data[used:]
	// Every entry takes at least 4 bytes; reject counts that cannot fit
	// before sizing any allocation.
	if count > uint64(len(data))/4 {
		return 0, 0, nil, fmt.Errorf("total: ack count %d exceeds body", count)
	}
	assigns = make(map[uint64]seqAssign, count)
	for i := uint64(0); i < count; i++ {
		seq, used := binary.Uvarint(data)
		if used <= 0 {
			return 0, 0, nil, fmt.Errorf("total: truncated ack seq")
		}
		data = data[used:]
		aEpoch, used := binary.Uvarint(data)
		if used <= 0 {
			return 0, 0, nil, fmt.Errorf("total: truncated ack assign epoch")
		}
		var l message.Label
		l, data, err = readLabel(data[used:])
		if err != nil {
			return 0, 0, nil, err
		}
		assigns[seq] = seqAssign{label: l, epoch: aEpoch}
	}
	if len(data) != 0 {
		return 0, 0, nil, fmt.Errorf("total: %d trailing ack bytes", len(data))
	}
	return epoch, nextDeliver, assigns, nil
}

func encodeSeqHB(epoch, nextDeliver uint64) []byte {
	buf := binary.AppendUvarint(make([]byte, 0, uvarintLen(epoch)+uvarintLen(nextDeliver)), epoch)
	return binary.AppendUvarint(buf, nextDeliver)
}

func decodeSeqHB(data []byte) (epoch, nextDeliver uint64, err error) {
	epoch, used := binary.Uvarint(data)
	if used <= 0 {
		return 0, 0, fmt.Errorf("total: truncated seqhb epoch")
	}
	data = data[used:]
	nextDeliver, used = binary.Uvarint(data)
	if used <= 0 || used != len(data) {
		return 0, 0, fmt.Errorf("total: malformed seqhb body")
	}
	return epoch, nextDeliver, nil
}
