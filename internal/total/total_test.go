package total

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"causalshare/internal/causal"
	"causalshare/internal/group"
	"causalshare/internal/message"
	"causalshare/internal/transport"
)

type collector struct {
	mu   sync.Mutex
	msgs []message.Message
}

func (c *collector) deliver(m message.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs = append(c.msgs, m)
}

func (c *collector) snapshot() []message.Message {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]message.Message(nil), c.msgs...)
}

// layer abstracts Orderer vs Sequencer for shared contract tests.
type layer interface {
	Bind(causal.Broadcaster)
	Ingest(message.Message)
	ASend(op string, kind message.Kind, body []byte, after message.OccursAfter) (message.Label, error)
	Pending() int
	Delivered() uint64
	Close() error
}

type totalStack struct {
	ids     []string
	net     *transport.ChanNet
	layers  map[string]layer
	cols    map[string]*collector
	engines map[string]*causal.OSend
}

func (s *totalStack) close(t *testing.T) {
	t.Helper()
	for _, l := range s.layers {
		if err := l.Close(); err != nil {
			t.Errorf("layer close: %v", err)
		}
	}
	for _, e := range s.engines {
		if err := e.Close(); err != nil {
			t.Errorf("engine close: %v", err)
		}
	}
	_ = s.net.Close()
}

// flush pumps heartbeats (Orderer) until every member delivered want
// messages or the deadline passes.
func (s *totalStack) flush(t *testing.T, want uint64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		done := true
		for _, l := range s.layers {
			if l.Delivered() < want {
				done = false
			}
		}
		if done {
			return
		}
		if time.Now().After(deadline) {
			for id, l := range s.layers {
				t.Logf("member %s delivered %d pending %d", id, l.Delivered(), l.Pending())
			}
			t.Fatalf("timed out waiting for %d total-order deliveries", want)
		}
		for _, l := range s.layers {
			if o, ok := l.(*Orderer); ok {
				_ = o.Heartbeat()
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func newStack(t *testing.T, kind string, ids []string, faults transport.FaultModel) *totalStack {
	t.Helper()
	grp := group.MustNew("g", ids)
	net := transport.NewChanNet(faults)
	s := &totalStack{
		ids: ids, net: net,
		layers:  map[string]layer{},
		cols:    map[string]*collector{},
		engines: map[string]*causal.OSend{},
	}
	for _, id := range ids {
		col := &collector{}
		var l layer
		var err error
		cfg := Config{Self: id, Group: grp, Deliver: col.deliver}
		switch kind {
		case "orderer":
			l, err = New(cfg)
		case "sequencer":
			l, err = NewSequencer(cfg)
		default:
			t.Fatalf("unknown layer kind %q", kind)
		}
		if err != nil {
			t.Fatal(err)
		}
		conn, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		patience := 20 * time.Millisecond
		if faults.DropProb == 0 {
			patience = 0
		}
		eng, err := causal.NewOSend(causal.OSendConfig{
			Self: id, Group: grp, Conn: conn, Deliver: l.Ingest, Patience: patience,
		})
		if err != nil {
			t.Fatal(err)
		}
		l.Bind(eng)
		s.layers[id] = l
		s.cols[id] = col
		s.engines[id] = eng
	}
	return s
}

func layerKinds() []string { return []string{"orderer", "sequencer"} }

func assertIdenticalOrder(t *testing.T, s *totalStack, want int) {
	t.Helper()
	var ref []message.Message
	for _, id := range s.ids {
		got := s.cols[id].snapshot()
		if len(got) != want {
			t.Fatalf("member %s delivered %d, want %d", id, len(got), want)
		}
		if ref == nil {
			ref = got
			continue
		}
		for i := range ref {
			if got[i].Label != ref[i].Label {
				t.Fatalf("member %s order diverges at %d: %v vs %v",
					id, i, got[i].Label, ref[i].Label)
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	grp := group.MustNew("g", []string{"a"})
	cb := func(message.Message) {}
	for _, kind := range layerKinds() {
		t.Run(kind, func(t *testing.T) {
			bad := []Config{
				{Self: "x", Group: grp, Deliver: cb},
				{Self: "a", Deliver: cb},
				{Self: "a", Group: grp},
			}
			for i, cfg := range bad {
				var err error
				if kind == "orderer" {
					_, err = New(cfg)
				} else {
					_, err = NewSequencer(cfg)
				}
				if err == nil {
					t.Errorf("config %d accepted", i)
				}
			}
		})
	}
}

func TestASendBeforeBindFails(t *testing.T) {
	grp := group.MustNew("g", []string{"a"})
	for _, kind := range layerKinds() {
		t.Run(kind, func(t *testing.T) {
			cfg := Config{Self: "a", Group: grp, Deliver: func(message.Message) {}}
			var l layer
			var err error
			if kind == "orderer" {
				l, err = New(cfg)
			} else {
				l, err = NewSequencer(cfg)
			}
			if err != nil {
				t.Fatal(err)
			}
			if _, err := l.ASend("x", message.KindCommutative, nil, message.Unconstrained()); err == nil {
				t.Error("ASend before Bind succeeded")
			}
		})
	}
}

func TestIdenticalTotalOrderUnderReordering(t *testing.T) {
	for _, kind := range layerKinds() {
		t.Run(kind, func(t *testing.T) {
			ids := []string{"a", "b", "c"}
			s := newStack(t, kind, ids, transport.FaultModel{
				MinDelay: 0, MaxDelay: 4 * time.Millisecond, Seed: 7,
			})
			defer s.close(t)
			const perMember = 15
			var wg sync.WaitGroup
			for _, id := range ids {
				wg.Add(1)
				go func(id string) {
					defer wg.Done()
					for i := 0; i < perMember; i++ {
						op := fmt.Sprintf("op-%s-%d", id, i)
						if _, err := s.layers[id].ASend(op, message.KindNonCommutative, nil, message.Unconstrained()); err != nil {
							t.Errorf("ASend: %v", err)
							return
						}
					}
				}(id)
			}
			wg.Wait()
			want := uint64(len(ids) * perMember)
			s.flush(t, want, 10*time.Second)
			assertIdenticalOrder(t, s, int(want))
		})
	}
}

func TestIdenticalTotalOrderUnderLoss(t *testing.T) {
	for _, kind := range layerKinds() {
		t.Run(kind, func(t *testing.T) {
			ids := []string{"a", "b", "c"}
			s := newStack(t, kind, ids, transport.FaultModel{
				DropProb: 0.15, MinDelay: 0, MaxDelay: 2 * time.Millisecond, Seed: 13,
			})
			defer s.close(t)
			const perMember = 8
			for _, id := range ids {
				for i := 0; i < perMember; i++ {
					op := fmt.Sprintf("op-%s-%d", id, i)
					if _, err := s.layers[id].ASend(op, message.KindNonCommutative, nil, message.Unconstrained()); err != nil {
						t.Fatal(err)
					}
				}
			}
			want := uint64(len(ids) * perMember)
			s.flush(t, want, 20*time.Second)
			assertIdenticalOrder(t, s, int(want))
		})
	}
}

func TestQuietMemberDoesNotStall(t *testing.T) {
	// Member c never ASends. With the orderer, heartbeats must release
	// deliveries; with the sequencer, no heartbeats are needed at all.
	for _, kind := range layerKinds() {
		t.Run(kind, func(t *testing.T) {
			ids := []string{"a", "b", "c"}
			s := newStack(t, kind, ids, transport.FaultModel{})
			defer s.close(t)
			for i := 0; i < 5; i++ {
				if _, err := s.layers["a"].ASend("w", message.KindNonCommutative, nil, message.Unconstrained()); err != nil {
					t.Fatal(err)
				}
			}
			s.flush(t, 5, 5*time.Second)
			assertIdenticalOrder(t, s, 5)
		})
	}
}

func TestBodyAndOpPreserved(t *testing.T) {
	for _, kind := range layerKinds() {
		t.Run(kind, func(t *testing.T) {
			ids := []string{"a", "b"}
			s := newStack(t, kind, ids, transport.FaultModel{})
			defer s.close(t)
			body := []byte{1, 2, 3, 250}
			if _, err := s.layers["a"].ASend("lock", message.KindControl, body, message.Unconstrained()); err != nil {
				t.Fatal(err)
			}
			s.flush(t, 1, 5*time.Second)
			got := s.cols["b"].snapshot()
			if got[0].Op != "lock" {
				t.Errorf("Op = %q", got[0].Op)
			}
			if string(got[0].Body) != string(body) {
				t.Errorf("Body = %v, want %v", got[0].Body, body)
			}
			if got[0].Kind != message.KindControl {
				t.Errorf("Kind = %v", got[0].Kind)
			}
		})
	}
}

func TestHeartbeatsFilteredFromApplication(t *testing.T) {
	ids := []string{"a", "b"}
	s := newStack(t, "orderer", ids, transport.FaultModel{})
	defer s.close(t)
	o, ok := s.layers["a"].(*Orderer)
	if !ok {
		t.Fatal("layer not an Orderer")
	}
	for i := 0; i < 10; i++ {
		if err := o.Heartbeat(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.layers["b"].ASend("real", message.KindCommutative, nil, message.Unconstrained()); err != nil {
		t.Fatal(err)
	}
	s.flush(t, 1, 5*time.Second)
	for _, id := range ids {
		for _, m := range s.cols[id].snapshot() {
			if m.Op == opHeartbeat {
				t.Errorf("member %s saw heartbeat", id)
			}
		}
	}
}

func TestOrdererAutoHeartbeat(t *testing.T) {
	ids := []string{"a", "b"}
	grp := group.MustNew("g", ids)
	net := transport.NewChanNet(transport.FaultModel{})
	defer func() { _ = net.Close() }()
	cols := map[string]*collector{}
	var layers []*Orderer
	var engines []*causal.OSend
	for _, id := range ids {
		col := &collector{}
		cols[id] = col
		o, err := New(Config{
			Self: id, Group: grp, Deliver: col.deliver,
			HeartbeatEvery: 5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		conn, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := causal.NewOSend(causal.OSendConfig{
			Self: id, Group: grp, Conn: conn, Deliver: o.Ingest,
		})
		if err != nil {
			t.Fatal(err)
		}
		o.Bind(eng)
		layers = append(layers, o)
		engines = append(engines, eng)
	}
	defer func() {
		for _, o := range layers {
			_ = o.Close()
		}
		for _, e := range engines {
			_ = e.Close()
		}
	}()
	if _, err := layers[0].ASend("w", message.KindNonCommutative, nil, message.Unconstrained()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if len(cols["a"].snapshot()) == 1 && len(cols["b"].snapshot()) == 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("auto-heartbeats never released the message")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestASendAfterClose(t *testing.T) {
	for _, kind := range layerKinds() {
		t.Run(kind, func(t *testing.T) {
			s := newStack(t, kind, []string{"a", "b"}, transport.FaultModel{})
			l := s.layers["a"]
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := l.ASend("x", message.KindCommutative, nil, message.Unconstrained()); err != ErrClosed {
				t.Errorf("ASend after Close = %v, want ErrClosed", err)
			}
			_ = s.layers["b"].Close()
			for _, e := range s.engines {
				_ = e.Close()
			}
			_ = s.net.Close()
		})
	}
}

func TestForeignTrafficIgnored(t *testing.T) {
	// Application messages sent directly through the causal layer must not
	// disturb the total layer.
	ids := []string{"a", "b"}
	s := newStack(t, "orderer", ids, transport.FaultModel{})
	defer s.close(t)
	app := message.Message{
		Label: message.Label{Origin: "a", Seq: 1},
		Kind:  message.KindCommutative,
		Op:    "direct",
	}
	if err := s.engines["a"].Broadcast(app); err != nil {
		t.Fatal(err)
	}
	if _, err := s.layers["a"].ASend("ordered", message.KindNonCommutative, nil, message.Unconstrained()); err != nil {
		t.Fatal(err)
	}
	s.flush(t, 1, 5*time.Second)
	for _, id := range ids {
		got := s.cols[id].snapshot()
		if len(got) != 1 || got[0].Op != "ordered" {
			t.Errorf("member %s total deliveries = %v", id, got)
		}
	}
}

// TestOrdererOverCBCast runs the total layer on the vector-clock engine:
// CBCAST provides FIFO natively, so the self-chained dependencies are
// redundant but harmless, and the merge still agrees.
func TestOrdererOverCBCast(t *testing.T) {
	ids := []string{"a", "b", "c"}
	grp := group.MustNew("g", ids)
	net := transport.NewChanNet(transport.FaultModel{
		MinDelay: 0, MaxDelay: 3 * time.Millisecond, Seed: 29,
	})
	defer func() { _ = net.Close() }()
	cols := map[string]*collector{}
	layers := map[string]*Orderer{}
	var engines []*causal.CBCast
	defer func() {
		for _, l := range layers {
			_ = l.Close()
		}
		for _, e := range engines {
			_ = e.Close()
		}
	}()
	for _, id := range ids {
		col := &collector{}
		cols[id] = col
		o, err := New(Config{Self: id, Group: grp, Deliver: col.deliver})
		if err != nil {
			t.Fatal(err)
		}
		conn, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := causal.NewCBCast(causal.CBCastConfig{
			Self: id, Group: grp, Conn: conn, Deliver: o.Ingest,
		})
		if err != nil {
			t.Fatal(err)
		}
		o.Bind(eng)
		layers[id] = o
		engines = append(engines, eng)
	}
	const perMember = 10
	for _, id := range ids {
		for i := 0; i < perMember; i++ {
			op := fmt.Sprintf("op-%s-%d", id, i)
			if _, err := layers[id].ASend(op, message.KindNonCommutative, nil, message.Unconstrained()); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := len(ids) * perMember
	deadline := time.Now().Add(10 * time.Second)
	for {
		done := true
		for _, l := range layers {
			if l.Delivered() < uint64(want) {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("total order over CBCAST never completed")
		}
		for _, l := range layers {
			_ = l.Heartbeat()
		}
		time.Sleep(2 * time.Millisecond)
	}
	ref := cols[ids[0]].snapshot()
	for _, id := range ids[1:] {
		got := cols[id].snapshot()
		for i := range ref {
			if got[i].Label != ref[i].Label {
				t.Fatalf("member %s diverges at %d over CBCAST", id, i)
			}
		}
	}
}

func TestMixedRegimeCausalConstraintRespected(t *testing.T) {
	// The paper's ASend({m}, OccursAfter(Msg)): a totally ordered message
	// can still carry an explicit causal ancestor. Every member must
	// ingest the ancestor before the ordered message is even considered.
	ids := []string{"a", "b", "c"}
	s := newStack(t, "orderer", ids, transport.FaultModel{
		MinDelay: 0, MaxDelay: 3 * time.Millisecond, Seed: 21,
	})
	defer s.close(t)

	ancestor := message.Message{
		Label: message.Label{Origin: "a", Seq: 1},
		Kind:  message.KindNonCommutative,
		Op:    "Msg",
	}
	var seen sync.Map
	// Wrap collectors to record when the ancestor arrives at each member
	// relative to the ordered message: the causal engine delivers both, so
	// check via engine delivery state instead.
	if err := s.engines["a"].Broadcast(ancestor); err != nil {
		t.Fatal(err)
	}
	if _, err := s.layers["b"].ASend("after-msg", message.KindNonCommutative, nil, message.After(ancestor.Label)); err != nil {
		t.Fatal(err)
	}
	s.flush(t, 1, 5*time.Second)
	for _, id := range ids {
		if !s.engines[id].Delivered(ancestor.Label) {
			t.Errorf("member %s released ordered message without its causal ancestor", id)
		}
		seen.Store(id, true)
	}
}
