package total

import (
	"testing"

	"causalshare/internal/message"
)

func TestOrderRoundTrip(t *testing.T) {
	cases := []struct {
		epoch, seq uint64
		label      message.Label
	}{
		{0, 1, message.Label{Origin: "a~seq", Seq: 1}},
		{3, 900, message.Label{Origin: "member-with-long-name~seq", Seq: 1 << 40}},
		{1 << 60, 1 << 62, message.Label{Origin: "x", Seq: 7}},
	}
	for _, c := range cases {
		body := encodeOrder(c.epoch, c.seq, c.label)
		epoch, seq, l, err := decodeOrder(body)
		if err != nil {
			t.Fatalf("decodeOrder(%v): %v", c, err)
		}
		if epoch != c.epoch || seq != c.seq || l != c.label {
			t.Fatalf("round trip changed (%d,%d,%v) -> (%d,%d,%v)", c.epoch, c.seq, c.label, epoch, seq, l)
		}
	}
}

func TestOrderDecodeRejectsTruncation(t *testing.T) {
	body := encodeOrder(5, 77, message.Label{Origin: "abc~seq", Seq: 9})
	for cut := 0; cut < len(body); cut++ {
		if _, _, _, err := decodeOrder(body[:cut]); err == nil {
			t.Fatalf("decodeOrder accepted %d of %d bytes", cut, len(body))
		}
	}
	if _, _, _, err := decodeOrder(append(body, 0)); err == nil {
		t.Fatal("decodeOrder accepted trailing byte")
	}
}

func TestElectRoundTrip(t *testing.T) {
	for _, epoch := range []uint64{0, 1, 127, 128, 1 << 50} {
		got, err := decodeElect(encodeElect(epoch))
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		if got != epoch {
			t.Fatalf("epoch changed %d -> %d", epoch, got)
		}
	}
	if _, err := decodeElect(nil); err == nil {
		t.Fatal("decodeElect accepted empty body")
	}
	if _, err := decodeElect([]byte{0x01, 0x02}); err == nil {
		t.Fatal("decodeElect accepted trailing byte")
	}
}

func TestAckRoundTrip(t *testing.T) {
	assigns := map[uint64]seqAssign{
		12: {label: message.Label{Origin: "a~seq", Seq: 40}, epoch: 1},
		13: {label: message.Label{Origin: "b~seq", Seq: 2}, epoch: 2},
		99: {label: message.Label{Origin: "c~seq", Seq: 7}, epoch: 0},
	}
	body := encodeAck(2, 12, assigns)
	epoch, nd, got, err := decodeAck(body)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 || nd != 12 {
		t.Fatalf("header changed: epoch=%d nd=%d", epoch, nd)
	}
	if len(got) != len(assigns) {
		t.Fatalf("assign count changed %d -> %d", len(assigns), len(got))
	}
	for seq, a := range assigns {
		if got[seq] != a {
			t.Fatalf("assign %d changed %v -> %v", seq, a, got[seq])
		}
	}
}

func TestAckDecodeRejectsOversizedCount(t *testing.T) {
	// epoch=0 nd=0 count=huge with no entries must be rejected before any
	// allocation is sized from the count.
	body := []byte{0x00, 0x00, 0xFF, 0xFF, 0xFF, 0x7F}
	if _, _, _, err := decodeAck(body); err == nil {
		t.Fatal("decodeAck accepted an oversized count")
	}
}

func TestSeqHBRoundTrip(t *testing.T) {
	for _, c := range [][2]uint64{{0, 0}, {4, 1000}, {1 << 55, 1 << 30}} {
		epoch, nd, err := decodeSeqHB(encodeSeqHB(c[0], c[1]))
		if err != nil {
			t.Fatal(err)
		}
		if epoch != c[0] || nd != c[1] {
			t.Fatalf("round trip changed %v -> (%d,%d)", c, epoch, nd)
		}
	}
	if _, _, err := decodeSeqHB([]byte{0x01}); err == nil {
		t.Fatal("decodeSeqHB accepted truncated body")
	}
}

// FuzzOrderEpochDecode drives every sequencer control-plane decoder with
// arbitrary bytes: none may panic, and any accepted input must survive an
// encode/decode round trip value-for-value. (Byte identity is not
// required: binary.Uvarint tolerates non-minimal varint encodings, so two
// byte strings can decode to one value.)
func FuzzOrderEpochDecode(f *testing.F) {
	f.Add(encodeOrder(0, 1, message.Label{Origin: "a~seq", Seq: 1}))
	f.Add(encodeOrder(3, 900, message.Label{Origin: "m00~seq", Seq: 1 << 33}))
	f.Add(encodeAck(2, 12, map[uint64]seqAssign{
		5: {label: message.Label{Origin: "b~seq", Seq: 2}, epoch: 1},
	}))
	f.Add(encodeElect(7))
	f.Add(encodeSeqHB(1, 44))
	f.Add(wrapBody(9, []byte("payload")))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		if epoch, seq, l, err := decodeOrder(data); err == nil {
			e2, s2, l2, err := decodeOrder(encodeOrder(epoch, seq, l))
			if err != nil || e2 != epoch || s2 != seq || l2 != l {
				t.Fatalf("order round trip changed (%d,%d,%v): %v", epoch, seq, l, err)
			}
		}
		if epoch, nd, assigns, err := decodeAck(data); err == nil {
			// Map iteration makes ACK byte order non-canonical; a decode of
			// the re-encoding must agree field-for-field instead.
			e2, n2, a2, err := decodeAck(encodeAck(epoch, nd, assigns))
			if err != nil {
				t.Fatalf("ack re-decode failed: %v", err)
			}
			if e2 != epoch || n2 != nd || len(a2) != len(assigns) {
				t.Fatal("ack round trip changed header or size")
			}
			for seq, a := range assigns {
				if a2[seq] != a {
					t.Fatalf("ack assign %d changed", seq)
				}
			}
		}
		if epoch, err := decodeElect(data); err == nil {
			if e2, err := decodeElect(encodeElect(epoch)); err != nil || e2 != epoch {
				t.Fatalf("elect round trip changed %d: %v", epoch, err)
			}
		}
		if epoch, nd, err := decodeSeqHB(data); err == nil {
			e2, n2, err := decodeSeqHB(encodeSeqHB(epoch, nd))
			if err != nil || e2 != epoch || n2 != nd {
				t.Fatalf("seqhb round trip changed (%d,%d): %v", epoch, nd, err)
			}
		}
		if stamp, body, err := unwrapBody(data); err == nil {
			s2, b2, err := unwrapBody(wrapBody(stamp, body))
			if err != nil || s2 != stamp || string(b2) != string(body) {
				t.Fatalf("wrapBody round trip changed stamp %d: %v", stamp, err)
			}
		}
	})
}
