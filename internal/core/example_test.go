package core_test

import (
	"fmt"

	"causalshare/internal/core"
	"causalshare/internal/message"
	"causalshare/internal/shareddata"
)

// The §6.1 client skeleton: commutative operations stay concurrent within
// a cycle; the closer names the whole commutative set.
func ExampleFrontEnd() {
	fe, _ := core.NewComposer("client-1")
	inc := shareddata.Inc()
	c1, _ := fe.Compose(inc.Op, inc.Kind, inc.Body)
	c2, _ := fe.Compose(inc.Op, inc.Kind, inc.Body)
	rd := shareddata.Read()
	closer, _ := fe.Compose(rd.Op, rd.Kind, rd.Body)
	fmt.Println("c1 after:", c1.Deps)
	fmt.Println("c2 after:", c2.Deps)
	fmt.Println("closer after:", closer.Deps)
	// Output:
	// c1 after: ∅
	// c2 after: ∅
	// closer after: (client-1#1 ∧ client-1#2)
}

// Item scoping (§5.1): same-item overwrites chain, cross-item overwrites
// stay concurrent, the Sync joins every chain tip.
func ExampleItemFrontEnd() {
	fe, _ := core.NewItemComposer("editor")
	a1 := fe.ComposeScoped("put", "README", []byte("v1"))
	a2 := fe.ComposeScoped("put", "README", []byte("v2"))
	b1 := fe.ComposeScoped("put", "Makefile", []byte("w1"))
	sync := fe.ComposeSync("snapshot", nil)
	fmt.Println("a2 after:", a2.Deps)
	fmt.Println("b1 after:", b1.Deps)
	fmt.Println("sync after:", sync.Deps)
	_ = a1
	// Output:
	// a2 after: (editor#1)
	// b1 after: ∅
	// sync after: (editor#2 ∧ editor#3)
}

// Replicas detect stable points locally and agree on the state there.
func ExampleReplica() {
	rep, _ := core.NewReplica(core.ReplicaConfig{
		Self:    "r1",
		Initial: shareddata.NewCounter(0),
		Apply:   shareddata.ApplyCounter,
	})
	deliver := func(seq uint64, kind message.Kind, op string) {
		rep.Deliver(message.Message{
			Label: message.Label{Origin: "c", Seq: seq},
			Kind:  kind,
			Op:    op,
		})
	}
	deliver(1, message.KindCommutative, "inc")
	deliver(2, message.KindCommutative, "inc")
	deliver(3, message.KindRead, "rd") // closes the activity
	st, cycle := rep.ReadStable()
	fmt.Printf("stable point %d: %s\n", cycle, st.Digest())
	// Output:
	// stable point 1: counter:2
}
