// Package core implements the paper's computational framework for shared
// data access (§4–§6.1): application state machines driven by causally
// ordered messages, causal activities, stable-point detection, the client
// front-end manager that generates OccursAfter orderings from operation
// commutativity, and replicas that defer reads to stable points.
//
// The pieces compose as follows. A FrontEnd turns application operations
// into messages whose OccursAfter predicates encode the generic protocol
// of §6.1 (commutative operations concurrent within a cycle, each cycle
// closed by a non-commutative operation). Any causal.Broadcaster carries
// the messages. A Replica applies delivered messages to its local state
// copy via the application's transition function F: M×S → S, recognizes
// stable points locally — no agreement rounds — and serves deferred reads
// from stable states, which the model guarantees identical at every
// replica.
package core

import (
	"fmt"

	"causalshare/internal/graph"
	"causalshare/internal/message"
)

// State is an application state S. Implementations must be value-like:
// Clone returns an independent deep copy, Equal compares by value, and
// Digest returns a deterministic fingerprint equal states share (used to
// audit cross-replica agreement at stable points).
type State interface {
	Clone() State
	Equal(State) bool
	Digest() string
}

// Transition is the state transition function F: M×S → S of relation (1)
// in the paper. It must be deterministic and must not retain or mutate m.
// Implementations return the successor state; they may mutate and return
// the input state (the replica owns it) or return a fresh one.
type Transition func(State, message.Message) State

// Commute reports whether applying a and b in either order from state s
// yields equal states under apply — the paper's definition of concurrent
// (commutative) messages: F(mb, F(ma, s)) = F(ma, F(mb, s)).
func Commute(apply Transition, s State, a, b message.Message) bool {
	ab := apply(apply(s.Clone(), a), b)
	ba := apply(apply(s.Clone(), b), a)
	return ab.Equal(ba)
}

// TransitionPreserving reports whether every linearization of the message
// set msgs allowed by the dependency graph g reaches the same final state
// from s0 — the §4.1 condition for R(K) to constitute a causal activity
// whose closing state is a stable point.
//
// limit bounds the number of linearizations examined (0 = all; the count
// can reach (r+1)! per the paper). If the graph is empty the answer is
// trivially true. An error is returned when g contains labels missing
// from msgs.
func TransitionPreserving(g *graph.Graph, msgs map[message.Label]message.Message, apply Transition, s0 State, limit int) (bool, error) {
	lins := g.Linearizations(limit)
	if len(lins) == 0 {
		return true, nil
	}
	var ref State
	for i, lin := range lins {
		st := s0.Clone()
		for _, l := range lin {
			m, ok := msgs[l]
			if !ok {
				return false, fmt.Errorf("core: label %v in graph but not in message set", l)
			}
			st = apply(st, m)
		}
		if i == 0 {
			ref = st
			continue
		}
		if !st.Equal(ref) {
			return false, nil
		}
	}
	return true, nil
}
