package core

import (
	"fmt"

	"causalshare/internal/graph"
	"causalshare/internal/message"
)

// Activity is the declarative form of one processing cycle r of the §6
// protocol:
//
//	rqst_nc(r-1) -> ||{rqst_c(r,k)}_{k=1..f} -> rqst_nc(r)
//
// Opener is rqst_nc(r-1) (Nil for the first cycle), Body the concurrent
// commutative set, and Closer the non-commutative message that
// establishes the stable point.
type Activity struct {
	Opener message.Message
	Body   []message.Message
	Closer message.Message
}

// Messages returns all the activity's messages keyed by label.
func (a Activity) Messages() map[message.Label]message.Message {
	out := make(map[message.Label]message.Message, len(a.Body)+2)
	if !a.Opener.Label.IsNil() {
		out[a.Opener.Label] = a.Opener
	}
	for _, m := range a.Body {
		out[m.Label] = m
	}
	if !a.Closer.Label.IsNil() {
		out[a.Closer.Label] = a.Closer
	}
	return out
}

// Graph builds the dependency graph of the activity from the messages'
// OccursAfter predicates.
func (a Activity) Graph() (*graph.Graph, error) {
	g := graph.New()
	for _, m := range a.Messages() {
		if err := g.AddMessage(m); err != nil {
			return nil, fmt.Errorf("core: activity graph: %w", err)
		}
	}
	return g, nil
}

// Validate checks the structural shape of the cycle: every body message
// depends on the opener (when present), and the closer depends on every
// body message (or on the opener when the body is empty).
func (a Activity) Validate() error {
	if a.Closer.Label.IsNil() {
		return fmt.Errorf("core: activity has no closer")
	}
	if a.Closer.Kind != message.KindNonCommutative && a.Closer.Kind != message.KindRead {
		return fmt.Errorf("core: closer %v has kind %v", a.Closer.Label, a.Closer.Kind)
	}
	for _, m := range a.Body {
		if m.Kind != message.KindCommutative {
			return fmt.Errorf("core: body message %v has kind %v", m.Label, m.Kind)
		}
		if !a.Opener.Label.IsNil() && !m.Deps.Contains(a.Opener.Label) {
			return fmt.Errorf("core: body message %v does not occur after opener %v", m.Label, a.Opener.Label)
		}
	}
	if len(a.Body) == 0 {
		if !a.Opener.Label.IsNil() && !a.Closer.Deps.Contains(a.Opener.Label) {
			return fmt.Errorf("core: closer %v does not occur after opener %v", a.Closer.Label, a.Opener.Label)
		}
		return nil
	}
	for _, m := range a.Body {
		if !a.Closer.Deps.Contains(m.Label) {
			return fmt.Errorf("core: closer %v does not occur after body message %v", a.Closer.Label, m.Label)
		}
	}
	return nil
}

// IsStable reports whether the activity's state transitions are
// transition-preserving from s0 under apply — i.e. whether the closer
// really establishes a stable point for arbitrary interleavings of the
// body. limit bounds the linearizations examined (0 = all).
func (a Activity) IsStable(apply Transition, s0 State, limit int) (bool, error) {
	if err := a.Validate(); err != nil {
		return false, err
	}
	g, err := a.Graph()
	if err != nil {
		return false, err
	}
	return TransitionPreserving(g, a.Messages(), apply, s0, limit)
}
