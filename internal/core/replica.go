package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"causalshare/internal/flightrec"
	"causalshare/internal/message"
	"causalshare/internal/telemetry"
	"causalshare/internal/trace"
)

// StablePoint records one locally detected agreement point (§4.1): the
// state reached after processing the non-commutative message that closes
// a causal activity. Replicas that share a front-end graph produce the
// same sequence of StablePoint digests — that is the model's consistency
// guarantee, checked by the obs package's auditor.
type StablePoint struct {
	// Cycle is the activity index r.
	Cycle uint64
	// Closer is the label of the non-commutative (or read) message whose
	// processing established the point.
	Closer message.Label
	// Digest fingerprints the state at the point.
	Digest string
	// ActivitySize is the number of messages processed in the activity
	// this point closed (1 + |{Cid}_r| in the paper's cycle notation).
	ActivitySize int
}

// ReplicaConfig parameterizes a replica.
type ReplicaConfig struct {
	// Self names the replica (metrics and errors only).
	Self string
	// Initial is the state the replica starts from; the replica clones it.
	Initial State
	// Apply is the application's transition function F.
	Apply Transition
	// OnStable, when non-nil, is invoked after every stable point with the
	// point record and an independent clone of the stable state. It runs
	// on the delivery goroutine without the replica lock held.
	OnStable func(StablePoint, State)
	// Telemetry, when non-nil, registers the replica's core_* instruments
	// there; replicas sharing a registry aggregate.
	Telemetry *telemetry.Registry
	// Trace, when non-nil, receives an EventStable record per stable point.
	Trace *telemetry.Ring
	// Tracer, when non-nil, records span apply/stable events on the causal
	// trace collector and feeds its stable-point and deferred-read audits.
	Tracer *trace.Tracer
	// Flight, when non-nil, is this member's black-box flight recorder;
	// the replica records stable-point advances and served deferred reads
	// there directly (the trace collector audits but does not capture
	// them).
	Flight *flightrec.Recorder
}

// Replica maintains one member's copy of the shared data, applying
// messages in the causal order the broadcast layer delivers them and
// recognizing stable points locally. Between stable points, replicas may
// diverge (concurrent commutative messages arrive in different orders);
// at each stable point the model guarantees agreement, so deferred reads
// are served from stable states only. Replica is safe for concurrent use;
// Deliver is its causal.DeliverFunc.
type Replica struct {
	self     string
	apply    Transition
	onStable func(StablePoint, State)
	ins      coreInstruments
	trace    *telemetry.Ring
	spans    *trace.Tracer
	flight   *flightrec.Recorder

	mu          sync.Mutex
	state       State
	stable      State
	stableCycle uint64
	applied     uint64
	current     int // messages in the open activity
	lastStable  time.Time
	points      []StablePoint
	waiters     []chan readResult
}

type readResult struct {
	state State
	cycle uint64
}

// NewReplica constructs a replica from cfg.
func NewReplica(cfg ReplicaConfig) (*Replica, error) {
	if cfg.Initial == nil {
		return nil, fmt.Errorf("core: replica %q: nil initial state", cfg.Self)
	}
	if cfg.Apply == nil {
		return nil, fmt.Errorf("core: replica %q: nil transition function", cfg.Self)
	}
	r := &Replica{
		self:       cfg.Self,
		apply:      cfg.Apply,
		onStable:   cfg.OnStable,
		ins:        newCoreInstruments(cfg.Telemetry),
		trace:      cfg.Trace,
		spans:      cfg.Tracer,
		flight:     cfg.Flight,
		state:      cfg.Initial.Clone(),
		stable:     cfg.Initial.Clone(),
		lastStable: time.Now(),
	}
	// Observability plane: the stability frontier as snapshot-time gauges,
	// so the cluster aggregator can compute cross-member stability skew
	// (max cycle - min cycle) and spot a replica whose stable point has
	// gone stale. Registered per replica; with a shared registry the first
	// replica wins (per-member registries are the deployment model).
	cfg.Telemetry.GaugeFunc("core_stable_cycle",
		"Index of the replica's latest stable point (the stability frontier).",
		func() int64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			return int64(r.stableCycle)
		})
	cfg.Telemetry.GaugeFunc("core_stable_age_ms",
		"Milliseconds since the replica's latest stable point.",
		func() int64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			return time.Since(r.lastStable).Milliseconds()
		})
	return r, nil
}

// Deliver applies one causally delivered message. Non-commutative and read
// messages close the open activity and establish a stable point.
func (r *Replica) Deliver(m message.Message) {
	r.mu.Lock()
	r.state = r.apply(r.state, m)
	r.applied++
	r.current++
	r.ins.applied.Inc()
	r.spans.Apply(m.Label)
	var (
		notify   func(StablePoint, State)
		point    StablePoint
		snapshot State
		waiters  []chan readResult
	)
	if m.Kind == message.KindNonCommutative || m.Kind == message.KindRead {
		r.stableCycle++
		r.stable = r.state.Clone()
		point = StablePoint{
			Cycle:        r.stableCycle,
			Closer:       m.Label,
			Digest:       r.stable.Digest(),
			ActivitySize: r.current,
		}
		r.points = append(r.points, point)
		now := time.Now()
		r.ins.stablePoints.Inc()
		r.ins.stableInterval.Observe(now.Sub(r.lastStable).Seconds())
		r.ins.activitySize.Observe(float64(r.current))
		r.lastStable = now
		r.trace.Record(telemetry.EventStable, r.self, m.Label.Origin, m.Label.Seq, int64(r.stableCycle))
		r.spans.Stable(m.Label, r.stableCycle, point.Digest)
		r.flight.Stable(m.Label, r.stableCycle)
		r.current = 0
		waiters = r.waiters
		r.waiters = nil
		if r.onStable != nil {
			notify = r.onStable
			snapshot = r.stable.Clone()
		}
	}
	stableForWaiters := r.stable
	cycle := r.stableCycle
	r.mu.Unlock()

	for _, w := range waiters {
		w <- readResult{state: stableForWaiters.Clone(), cycle: cycle}
	}
	if notify != nil {
		notify(point, snapshot)
	}
}

// ReadDeferred returns an independent copy of the agreed state at a
// stable point along with its cycle number — the §5.1 deferred read: "a
// read operation on X requested at a member may be deferred to occur at
// the next stable point so that the value returned is the same as that by
// every other member". If the replica is mid-activity (or has seen no
// stable point yet) the call blocks until the activity closes; if it is
// exactly at a stable point, that point's state is returned immediately.
func (r *Replica) ReadDeferred(ctx context.Context) (State, uint64, error) {
	ch := make(chan readResult, 1)
	r.mu.Lock()
	if r.current == 0 && r.stableCycle > 0 {
		st, cycle := r.stable.Clone(), r.stableCycle
		r.mu.Unlock()
		r.ins.deferredWait.Observe(0)
		r.spans.ReadServed(cycle, cycle)
		r.flight.Read(cycle, cycle)
		return st, cycle, nil
	}
	// Mid-activity (or before the first stable point) the read must wait
	// for at least the next cycle; that is the boundary the trace auditor
	// checks the served cycle against.
	boundary := r.stableCycle + 1
	r.waiters = append(r.waiters, ch)
	r.mu.Unlock()
	t0 := time.Now()
	select {
	case res := <-ch:
		r.ins.deferredWait.ObserveSince(t0)
		r.spans.ReadServed(res.cycle, boundary)
		r.flight.Read(res.cycle, boundary)
		return res.state, res.cycle, nil
	case <-ctx.Done():
		return nil, 0, fmt.Errorf("core: deferred read at %q: %w", r.self, ctx.Err())
	}
}

// ReadStable returns a copy of the state at the most recent stable point
// without waiting (the value all replicas that reached this cycle agree
// on) and the cycle it belongs to.
func (r *Replica) ReadStable() (State, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stable.Clone(), r.stableCycle
}

// ReadNow returns a copy of the *current* state, which may differ across
// replicas mid-activity. The inconsistency-window experiment (E10) uses it
// to measure what deferred reads avoid.
func (r *Replica) ReadNow() State {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state.Clone()
}

// Applied returns the number of messages processed.
func (r *Replica) Applied() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}

// Cycle returns the index of the last stable point.
func (r *Replica) Cycle() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stableCycle
}

// StablePoints returns a copy of the stable-point history.
func (r *Replica) StablePoints() []StablePoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]StablePoint(nil), r.points...)
}

// TrimStablePoints discards all but the most recent keep history entries,
// bounding memory in long-running replicas. Cycle numbering is
// unaffected. It returns the number of entries dropped.
func (r *Replica) TrimStablePoints(keep int) int {
	if keep < 0 {
		keep = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	drop := len(r.points) - keep
	if drop <= 0 {
		return 0
	}
	remaining := make([]StablePoint, keep)
	copy(remaining, r.points[drop:])
	r.points = remaining
	return drop
}

// Self returns the replica's name.
func (r *Replica) Self() string { return r.self }
