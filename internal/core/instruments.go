package core

import "causalshare/internal/telemetry"

// coreInstruments are the replica's registry-backed instruments; all nil
// no-ops when the replica was built without a registry. Replicas sharing a
// registry aggregate.
type coreInstruments struct {
	applied        *telemetry.Counter
	stablePoints   *telemetry.Counter
	stableInterval *telemetry.Histogram
	deferredWait   *telemetry.Histogram
	activitySize   *telemetry.Histogram
}

func newCoreInstruments(reg *telemetry.Registry) coreInstruments {
	return coreInstruments{
		applied: reg.Counter("core_applied_total",
			"Messages applied to replica state."),
		stablePoints: reg.Counter("core_stable_points_total",
			"Stable points established (activities closed)."),
		stableInterval: reg.Histogram("core_stable_interval_seconds",
			"Wall time between consecutive local stable points (stable-point latency).",
			telemetry.DurationBuckets),
		deferredWait: reg.Histogram("core_deferred_read_wait_seconds",
			"Time a deferred read blocked until the next stable point.",
			telemetry.DurationBuckets),
		activitySize: reg.Histogram("core_activity_size",
			"Messages processed per causal activity (1 + |{Cid}_r|).",
			telemetry.CountBuckets),
	}
}
