package core

import (
	"fmt"
	"sync"

	"causalshare/internal/causal"
	"causalshare/internal/message"
)

// FrontEnd is the client-side manager of the generic replicated data
// access protocol (§6.1). It classifies operations as commutative or
// non-commutative and generates the OccursAfter ordering of the paper's
// client() skeleton:
//
//   - a commutative request is ordered after the last non-commutative
//     message (Ncid_{r-1}), making the whole commutative set {Cid}_r of a
//     cycle pairwise concurrent;
//   - a non-commutative request is ordered after the conjunction of the
//     commutative set {Cid}_r (or directly after Ncid_{r-1} when the set
//     is empty), closing cycle r:
//     Ncid_{r-1} -> ||{Cid}_r -> Ncid_r.
//
// The resulting dependency graph is the same at every replica, so each
// replica recognizes the stable points Ncid_r locally.
//
// A FrontEnd tracks both its own submissions and, via Observe, operations
// it sees delivered from other clients, so several clients' requests weave
// into one shared cycle structure. FrontEnd is safe for concurrent use.
type FrontEnd struct {
	bcast causal.Broadcaster

	mu      sync.Mutex
	origin  string
	labeler *message.Labeler
	// lastNC is the most recent non-commutative label known (own or
	// observed): the paper's Ncid_{r-1}.
	lastNC message.Label
	// cids is the commutative set {Cid}_r accumulated since lastNC.
	cids map[message.Label]struct{}
	// cycle counts closed cycles (r).
	cycle uint64
}

// NewFrontEnd builds a front-end for one client, co-located with the
// member owning broadcaster b. id must be unique among the member's
// clients and must not contain '~' (reserved for namespacing). Labels are
// issued under the origin "<member>~<id>" so that retransmission requests
// for this client's messages route to the member whose engine retains
// them (see causal.RouteOrigin).
func NewFrontEnd(id string, b causal.Broadcaster) (*FrontEnd, error) {
	if id == "" {
		return nil, fmt.Errorf("core: empty front-end id")
	}
	for i := 0; i < len(id); i++ {
		if id[i] == '~' {
			return nil, fmt.Errorf("core: front-end id %q contains reserved '~'", id)
		}
	}
	origin := b.Self() + "~" + id
	return &FrontEnd{
		bcast:   b,
		origin:  origin,
		labeler: message.NewLabeler(origin),
		cids:    make(map[message.Label]struct{}),
	}, nil
}

// NewComposer returns a front-end without a broadcaster: Compose and
// Observe work, Submit fails. The simulator and static analyses use it to
// generate the protocol's orderings without a live stack. origin is used
// verbatim as the label origin.
func NewComposer(origin string) (*FrontEnd, error) {
	if origin == "" {
		return nil, fmt.Errorf("core: empty composer origin")
	}
	return &FrontEnd{
		origin:  origin,
		labeler: message.NewLabeler(origin),
		cids:    make(map[message.Label]struct{}),
	}, nil
}

// Submit classifies, orders, and broadcasts one operation, returning the
// message sent. kind must be KindCommutative, KindNonCommutative, or
// KindRead (reads order like non-commutative operations: the paper's
// inc -> rd requirement).
func (f *FrontEnd) Submit(op string, kind message.Kind, body []byte) (message.Message, error) {
	if f.bcast == nil {
		return message.Message{}, fmt.Errorf("core: Submit on a composer-only front-end")
	}
	m, err := f.compose(op, kind, body)
	if err != nil {
		return message.Message{}, err
	}
	if err := f.bcast.Broadcast(m); err != nil {
		return message.Message{}, fmt.Errorf("core: submit %q: %w", op, err)
	}
	return m, nil
}

// Compose builds the ordered message without broadcasting it; the
// simulator uses it to drive deterministic executions.
func (f *FrontEnd) Compose(op string, kind message.Kind, body []byte) (message.Message, error) {
	return f.compose(op, kind, body)
}

func (f *FrontEnd) compose(op string, kind message.Kind, body []byte) (message.Message, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	label := f.labeler.Next()
	var deps message.OccursAfter
	switch kind {
	case message.KindCommutative:
		// Ordered only after the cycle opener; concurrent with the rest
		// of {Cid}_r.
		deps = message.After(f.lastNC)
		f.cids[label] = struct{}{}
	case message.KindNonCommutative, message.KindRead:
		if len(f.cids) == 0 {
			deps = message.After(f.lastNC)
		} else {
			all := make([]message.Label, 0, len(f.cids))
			for c := range f.cids {
				all = append(all, c)
			}
			deps = message.After(all...)
		}
		f.cids = make(map[message.Label]struct{})
		f.lastNC = label
		f.cycle++
	default:
		return message.Message{}, fmt.Errorf("core: cannot submit kind %v", kind)
	}
	return message.Message{Label: label, Deps: deps, Kind: kind, Op: op, Body: body}, nil
}

// Observe folds a message delivered at this client's site into the cycle
// tracking, so subsequent submissions order correctly after other clients'
// operations. Call it from the local replica's delivery path. Own messages
// are recognized and skipped (they were accounted at Submit).
func (f *FrontEnd) Observe(m message.Message) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if m.Label.Origin == f.origin {
		return // own message, accounted at Submit
	}
	switch m.Kind {
	case message.KindCommutative:
		f.cids[m.Label] = struct{}{}
	case message.KindNonCommutative, message.KindRead:
		// Another client closed the cycle: our pending {Cid} knowledge
		// resets and the observed closer becomes Ncid_{r}.
		f.cids = make(map[message.Label]struct{})
		f.lastNC = m.Label
		f.cycle++
	default:
	}
}

// Cycle returns the number of cycles closed so far (own + observed).
func (f *FrontEnd) Cycle() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cycle
}

// PendingCommutative returns |{Cid}_r| for the open cycle — the paper's
// f_gamma mix observable.
func (f *FrontEnd) PendingCommutative() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.cids)
}
