package core

import (
	"fmt"

	"causalshare/internal/message"
)

// DecomposeActivities splits one member's delivery sequence into the
// causal activities of §4.1/§6.1: each non-commutative (or read) message
// closes the activity containing every message delivered since the
// previous closer. The trailing open activity (messages after the last
// closer) is returned separately, since it has no stable point yet.
func DecomposeActivities(seq []message.Message) (closed []Activity, open []message.Message) {
	var opener message.Message
	var body []message.Message
	for _, m := range seq {
		switch m.Kind {
		case message.KindNonCommutative, message.KindRead:
			closed = append(closed, Activity{Opener: opener, Body: body, Closer: m})
			opener = m
			body = nil
		default:
			body = append(body, m)
		}
	}
	return closed, body
}

// TraceReport is the outcome of analyzing one member's delivery sequence
// against the model.
type TraceReport struct {
	// Activities is the number of closed causal activities found.
	Activities int
	// MeanActivitySize is the average number of messages per closed
	// activity (1 + |{Cid}| in the paper's notation).
	MeanActivitySize float64
	// UnstableAt lists the indices (into the closed-activity sequence) of
	// activities whose linearizations are NOT transition-preserving —
	// i.e. places where the protocol's "stable point" would not actually
	// be stable. Empty means the trace fully conforms to the model.
	UnstableAt []int
	// OpenTail is the number of messages after the last stable point.
	OpenTail int
}

// Conforms reports whether every closed activity was
// transition-preserving.
func (r TraceReport) Conforms() bool { return len(r.UnstableAt) == 0 }

// AnalyzeTrace verifies one member's delivery sequence against the model:
// it decomposes the sequence into causal activities and checks each for
// transition-preservation under the application's transition function,
// threading the state through activities (each closed activity's final
// state is the next one's initial state, per §4.1's "7 may use a stable
// point as the initial state for the next activity").
//
// limit bounds the linearizations examined per activity (0 = all).
func AnalyzeTrace(seq []message.Message, apply Transition, initial State, limit int) (TraceReport, error) {
	if initial == nil {
		return TraceReport{}, fmt.Errorf("core: nil initial state")
	}
	if apply == nil {
		return TraceReport{}, fmt.Errorf("core: nil transition function")
	}
	closed, open := DecomposeActivities(seq)
	report := TraceReport{Activities: len(closed), OpenTail: len(open)}
	state := initial.Clone()
	totalSize := 0
	for i, act := range closed {
		totalSize += len(act.Body) + 1
		stable, err := activityStableFrom(act, apply, state, limit)
		if err != nil {
			return report, fmt.Errorf("core: activity %d: %w", i, err)
		}
		if !stable {
			report.UnstableAt = append(report.UnstableAt, i)
		}
		// Advance the threaded state along the observed order (any
		// transition-preserving order gives the same result; for a
		// non-conforming activity the observed order is still what this
		// member actually computed).
		for _, m := range act.Body {
			state = apply(state, m)
		}
		state = apply(state, act.Closer)
	}
	if len(closed) > 0 {
		report.MeanActivitySize = float64(totalSize) / float64(len(closed))
	}
	return report, nil
}

// activityStableFrom checks transition-preservation of an activity's body
// and closer from a given initial state. Unlike Activity.IsStable it does
// not require the opener to be part of the replay (the threaded state
// already reflects it) and does not insist on the opener's dependency
// structure (an observed trace may interleave multiple clients).
func activityStableFrom(act Activity, apply Transition, s0 State, limit int) (bool, error) {
	if len(act.Body) == 0 {
		return true, nil // a lone closer is trivially stable
	}
	// The admissible orders of the activity: any permutation of the body
	// followed by the closer. Pairwise commutativity of the body under
	// every reachable intermediate state is equivalent for our transition
	// functions and far cheaper than factorial enumeration, but the
	// model's definition is about linearizations, so enumerate when the
	// body is small and fall back to pairwise checks beyond that.
	const enumerateUpTo = 6
	if len(act.Body) <= enumerateUpTo {
		return bodyLinearizationsPreserving(act, apply, s0, limit), nil
	}
	for i := range act.Body {
		for j := i + 1; j < len(act.Body); j++ {
			if !Commute(apply, s0, act.Body[i], act.Body[j]) {
				return false, nil
			}
		}
	}
	return true, nil
}

// bodyLinearizationsPreserving enumerates permutations of the body
// (bounded by limit when > 0) and compares final states.
func bodyLinearizationsPreserving(act Activity, apply Transition, s0 State, limit int) bool {
	var ref State
	count := 0
	ok := true
	var rec func(remaining []message.Message, st State)
	rec = func(remaining []message.Message, st State) {
		if !ok || (limit > 0 && count >= limit) {
			return
		}
		if len(remaining) == 0 {
			final := apply(st.Clone(), act.Closer)
			count++
			if ref == nil {
				ref = final
				return
			}
			if !final.Equal(ref) {
				ok = false
			}
			return
		}
		for i := range remaining {
			next := apply(st.Clone(), remaining[i])
			rest := make([]message.Message, 0, len(remaining)-1)
			rest = append(rest, remaining[:i]...)
			rest = append(rest, remaining[i+1:]...)
			rec(rest, next)
		}
	}
	rec(act.Body, s0.Clone())
	return ok
}
