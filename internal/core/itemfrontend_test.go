package core

import (
	"testing"
	"testing/quick"
	"time"

	"causalshare/internal/message"
	"causalshare/internal/transport"
)

func TestNewItemFrontEndValidation(t *testing.T) {
	b := &fakeBcast{}
	if _, err := NewItemFrontEnd("", b); err == nil {
		t.Error("empty id accepted")
	}
	if _, err := NewItemFrontEnd("x~y", b); err == nil {
		t.Error("reserved '~' accepted")
	}
}

func TestItemFrontEndChainsPerItem(t *testing.T) {
	f, err := NewItemFrontEnd("cli", &fakeBcast{})
	if err != nil {
		t.Fatal(err)
	}
	// Two writes to file "a" chain; a write to "b" is concurrent with
	// both and anchored only to the (nil) last sync.
	a1, err := f.SubmitScoped("put", "a", []byte("v1"))
	if err != nil {
		t.Fatal(err)
	}
	if !a1.Deps.Empty() {
		t.Errorf("first op deps = %v, want none", a1.Deps)
	}
	a2, _ := f.SubmitScoped("put", "a", []byte("v2"))
	if a2.Deps.Len() != 1 || !a2.Deps.Contains(a1.Label) {
		t.Errorf("same-item op deps = %v, want (a1)", a2.Deps)
	}
	b1, _ := f.SubmitScoped("put", "b", []byte("w"))
	if !b1.Deps.Empty() {
		t.Errorf("cross-item op deps = %v, want none (concurrent with a's chain)", b1.Deps)
	}
	if a2.Kind != message.KindCommutative || b1.Kind != message.KindCommutative {
		t.Error("scoped operations must be globally commutative")
	}
	if f.OpenOps() != 3 {
		t.Errorf("OpenOps = %d", f.OpenOps())
	}
}

func TestItemFrontEndSyncClosesAllChains(t *testing.T) {
	f, err := NewItemFrontEnd("cli", &fakeBcast{})
	if err != nil {
		t.Fatal(err)
	}
	a1, _ := f.SubmitScoped("put", "a", nil)
	a2, _ := f.SubmitScoped("put", "a", nil)
	b1, _ := f.SubmitScoped("put", "b", nil)
	sync, err := f.Sync("snapshot", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Sync depends on the chain tips only: a2 and b1, not a1.
	if sync.Deps.Len() != 2 || !sync.Deps.Contains(a2.Label) || !sync.Deps.Contains(b1.Label) {
		t.Errorf("sync deps = %v, want (a2 ∧ b1)", sync.Deps)
	}
	if sync.Deps.Contains(a1.Label) {
		t.Error("sync named a covered chain interior")
	}
	if sync.Kind != message.KindRead {
		t.Errorf("sync kind = %v", sync.Kind)
	}
	if f.Cycle() != 1 || f.OpenOps() != 0 {
		t.Errorf("cycle=%d open=%d", f.Cycle(), f.OpenOps())
	}
	// The next activity anchors to the sync.
	c1, _ := f.SubmitScoped("put", "c", nil)
	if c1.Deps.Len() != 1 || !c1.Deps.Contains(sync.Label) {
		t.Errorf("post-sync op deps = %v, want (sync)", c1.Deps)
	}
	// An empty activity's sync chains the previous sync.
	sync2, _ := f.Sync("snapshot", nil)
	if !sync2.Deps.Contains(c1.Label) {
		t.Errorf("second sync deps = %v", sync2.Deps)
	}
	sync3, _ := f.Sync("snapshot", nil)
	if sync3.Deps.Len() != 1 || !sync3.Deps.Contains(sync2.Label) {
		t.Errorf("empty-activity sync deps = %v, want (sync2)", sync3.Deps)
	}
}

func TestPropItemFrontEndStructure(t *testing.T) {
	// For arbitrary item sequences: (a) each item's operations form a
	// total chain; (b) operations on different items share no direct
	// dependency; (c) the Sync covers every chain tip.
	f := func(items []uint8) bool {
		fe, err := NewItemComposer("p~item")
		if err != nil {
			return false
		}
		lastOf := make(map[string]message.Label)
		var msgs []message.Message
		for _, b := range items {
			item := string(rune('a' + int(b)%4))
			m := fe.ComposeScoped("put", item, nil)
			if prev, ok := lastOf[item]; ok {
				if m.Deps.Len() != 1 || !m.Deps.Contains(prev) {
					return false // chain broken
				}
			} else if !m.Deps.Empty() {
				return false // first op of an item must be unanchored (no sync yet)
			}
			lastOf[item] = m.Label
			msgs = append(msgs, m)
		}
		sync := fe.ComposeSync("s", nil)
		if len(items) == 0 {
			return sync.Deps.Empty() // nothing issued, lastSync nil
		}
		if sync.Deps.Len() != len(lastOf) {
			return false
		}
		for _, tip := range lastOf {
			if !sync.Deps.Contains(tip) {
				return false
			}
		}
		_ = msgs
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestItemScopingLiveAgreement is the §5.1 payoff end to end: per-key
// overwrites on disjoint keys stay concurrent (no global closers), yet
// replicas agree at every Sync because same-key overwrites are chained.
func TestItemScopingLiveAgreement(t *testing.T) {
	ids := []string{"r1", "r2", "r3"}
	s := newStack(t, ids, transport.FaultModel{
		MinDelay: 0, MaxDelay: 4 * time.Millisecond, Seed: 61,
	}, 50*time.Millisecond)
	defer s.close(t)

	// Replace the counter replicas with KV semantics via raw messages:
	// this test drives the stack with put-style ops interpreted by the
	// counter Apply as unknown (state-neutral), so agreement is checked
	// on stable-point structure; the KV-level value check lives in the
	// shareddata package. Here we assert the protocol shape: all scoped
	// ops deliver, the Sync is the only stable point, and all replicas
	// close it identically.
	fe, err := NewItemFrontEnd("cli", s.engines["r1"])
	if err != nil {
		t.Fatal(err)
	}
	const keys, writesPerKey = 4, 5
	total := uint64(0)
	for w := 0; w < writesPerKey; w++ {
		for k := 0; k < keys; k++ {
			if _, err := fe.SubmitScoped("put", string(rune('a'+k)), []byte{byte(w)}); err != nil {
				t.Fatal(err)
			}
			total++
		}
	}
	if _, err := fe.Sync("snapshot", nil); err != nil {
		t.Fatal(err)
	}
	total++
	s.waitApplied(t, total, 10*time.Second)

	for _, id := range ids {
		points := s.replicas[id].StablePoints()
		if len(points) != 1 {
			t.Fatalf("replica %s stable points = %d, want 1 (only the Sync closes)", id, len(points))
		}
		if points[0].ActivitySize != int(total) {
			t.Errorf("replica %s activity size = %d, want %d", id, points[0].ActivitySize, total)
		}
	}
	ref := s.replicas[ids[0]].StablePoints()[0]
	for _, id := range ids[1:] {
		got := s.replicas[id].StablePoints()[0]
		if got.Closer != ref.Closer || got.Digest != ref.Digest {
			t.Errorf("replica %s stable point %+v, want %+v", id, got, ref)
		}
	}
}
