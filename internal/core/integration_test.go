package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"causalshare/internal/causal"
	"causalshare/internal/group"
	"causalshare/internal/message"
	"causalshare/internal/transport"
)

// stack is a full live deployment: replicas over a causal engine over a
// faulty network, plus front-ends co-located with two of the members.
type stack struct {
	ids      []string
	net      *transport.ChanNet
	engines  map[string]*causal.OSend
	replicas map[string]*Replica
}

func newStack(t *testing.T, ids []string, faults transport.FaultModel, patience time.Duration) *stack {
	t.Helper()
	grp := group.MustNew("g", ids)
	net := transport.NewChanNet(faults)
	s := &stack{
		ids: ids, net: net,
		engines:  map[string]*causal.OSend{},
		replicas: map[string]*Replica{},
	}
	for _, id := range ids {
		rep, err := NewReplica(ReplicaConfig{Self: id, Initial: &counterState{}, Apply: applyCounter})
		if err != nil {
			t.Fatal(err)
		}
		conn, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := causal.NewOSend(causal.OSendConfig{
			Self: id, Group: grp, Conn: conn, Deliver: rep.Deliver, Patience: patience,
		})
		if err != nil {
			t.Fatal(err)
		}
		s.engines[id] = eng
		s.replicas[id] = rep
	}
	return s
}

func (s *stack) close(t *testing.T) {
	t.Helper()
	for _, e := range s.engines {
		if err := e.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}
	_ = s.net.Close()
}

func (s *stack) waitApplied(t *testing.T, want uint64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		done := true
		for _, r := range s.replicas {
			if r.Applied() < want {
				done = false
			}
		}
		if done {
			return
		}
		if time.Now().After(deadline) {
			for id, r := range s.replicas {
				t.Logf("replica %s applied %d", id, r.Applied())
			}
			t.Fatalf("timed out waiting for %d applies", want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStablePointAgreementLiveStack is the paper's headline property end
// to end: replicas process concurrent commutative operations in different
// orders (reordering network) yet agree on every stable point, without
// any agreement protocol messages.
func TestStablePointAgreementLiveStack(t *testing.T) {
	ids := []string{"r1", "r2", "r3"}
	s := newStack(t, ids, transport.FaultModel{
		MinDelay: 0, MaxDelay: 4 * time.Millisecond, Seed: 77,
	}, 50*time.Millisecond)
	defer s.close(t)

	fe, err := NewFrontEnd("cli", s.engines["r1"])
	if err != nil {
		t.Fatal(err)
	}
	const cycles, commPerCycle = 10, 6
	total := uint64(0)
	for r := 0; r < cycles; r++ {
		for k := 0; k < commPerCycle; k++ {
			op := "inc"
			if k%2 == 1 {
				op = "dec"
			}
			if _, err := fe.Submit(op, message.KindCommutative, nil); err != nil {
				t.Fatal(err)
			}
			total++
		}
		if _, err := fe.Submit("set", message.KindNonCommutative, []byte(fmt.Sprintf("%d", r))); err != nil {
			t.Fatal(err)
		}
		total++
	}
	s.waitApplied(t, total, 10*time.Second)

	ref := s.replicas[ids[0]].StablePoints()
	if len(ref) != cycles {
		t.Fatalf("replica %s stable points = %d, want %d", ids[0], len(ref), cycles)
	}
	for _, id := range ids[1:] {
		got := s.replicas[id].StablePoints()
		if len(got) != len(ref) {
			t.Fatalf("replica %s stable points = %d, want %d", id, len(got), len(ref))
		}
		for i := range ref {
			if got[i].Digest != ref[i].Digest || got[i].Closer != ref[i].Closer {
				t.Errorf("replica %s stable point %d = %+v, want %+v", id, i, got[i], ref[i])
			}
		}
	}
}

// TestTwoFrontEndsInterleave exercises cross-client cycles: two clients on
// different members submit operations; each observes delivered traffic to
// chain orderings, and all replicas agree at stable points.
func TestTwoFrontEndsInterleave(t *testing.T) {
	ids := []string{"r1", "r2", "r3"}
	s := newStack(t, ids, transport.FaultModel{
		MinDelay: 0, MaxDelay: 2 * time.Millisecond, Seed: 5,
	}, 50*time.Millisecond)
	defer s.close(t)

	// Rebuild replicas r1, r2 so deliveries also feed the co-located
	// front-ends' Observe. (Engines were constructed with rep.Deliver; we
	// wrap by teeing through a mutex-protected list instead — simpler: use
	// front-ends that only chain their own traffic.)
	fe1, err := NewFrontEnd("cliA", s.engines["r1"])
	if err != nil {
		t.Fatal(err)
	}
	fe2, err := NewFrontEnd("cliB", s.engines["r2"])
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var sent uint64
	for _, fe := range []*FrontEnd{fe1, fe2} {
		wg.Add(1)
		go func(fe *FrontEnd) {
			defer wg.Done()
			for r := 0; r < 5; r++ {
				for k := 0; k < 4; k++ {
					if _, err := fe.Submit("inc", message.KindCommutative, nil); err != nil {
						t.Errorf("submit: %v", err)
						return
					}
					mu.Lock()
					sent++
					mu.Unlock()
				}
				if _, err := fe.Submit("rd", message.KindRead, nil); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				mu.Lock()
				sent++
				mu.Unlock()
			}
		}(fe)
	}
	wg.Wait()
	mu.Lock()
	total := sent
	mu.Unlock()
	s.waitApplied(t, total, 10*time.Second)

	// All replicas applied the same set; final (stable) counter values
	// must agree because the last message of each client is a read closer
	// — compare final full state after everything drained.
	final := s.replicas["r1"].ReadNow().Digest()
	for _, id := range ids[1:] {
		if got := s.replicas[id].ReadNow().Digest(); got != final {
			t.Errorf("replica %s final state %q, want %q", id, got, final)
		}
	}
}

// TestStablePointAgreementUnderLoss repeats the headline property on a
// lossy network: retransmission recovers, and agreement still holds.
func TestStablePointAgreementUnderLoss(t *testing.T) {
	ids := []string{"r1", "r2", "r3"}
	s := newStack(t, ids, transport.FaultModel{
		DropProb: 0.2, MinDelay: 0, MaxDelay: 2 * time.Millisecond, Seed: 123,
	}, 15*time.Millisecond)
	defer s.close(t)

	fe, err := NewFrontEnd("cli", s.engines["r2"])
	if err != nil {
		t.Fatal(err)
	}
	const cycles = 6
	total := uint64(0)
	for r := 0; r < cycles; r++ {
		for k := 0; k < 4; k++ {
			if _, err := fe.Submit("inc", message.KindCommutative, nil); err != nil {
				t.Fatal(err)
			}
			total++
		}
		if _, err := fe.Submit("rd", message.KindNonCommutative, nil); err != nil {
			t.Fatal(err)
		}
		total++
	}
	s.waitApplied(t, total, 20*time.Second)
	ref := s.replicas["r1"].StablePoints()
	for _, id := range ids[1:] {
		got := s.replicas[id].StablePoints()
		if len(got) != len(ref) {
			t.Fatalf("replica %s stable points = %d, want %d", id, len(got), len(ref))
		}
		for i := range ref {
			if got[i].Digest != ref[i].Digest {
				t.Errorf("replica %s stable point %d digest %q, want %q",
					id, i, got[i].Digest, ref[i].Digest)
			}
		}
	}
}
