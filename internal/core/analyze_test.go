package core

import (
	"testing"

	"causalshare/internal/message"
)

func TestDecomposeActivities(t *testing.T) {
	seq := []message.Message{
		msg(lbl("a", 1), message.KindCommutative, "inc"),
		msg(lbl("a", 2), message.KindCommutative, "dec"),
		msg(lbl("a", 3), message.KindNonCommutative, "set"),
		msg(lbl("a", 4), message.KindCommutative, "inc"),
		msg(lbl("a", 5), message.KindRead, "rd"),
		msg(lbl("a", 6), message.KindCommutative, "inc"),
	}
	closed, open := DecomposeActivities(seq)
	if len(closed) != 2 {
		t.Fatalf("closed activities = %d, want 2", len(closed))
	}
	if len(closed[0].Body) != 2 || closed[0].Closer.Label != lbl("a", 3) {
		t.Errorf("first activity = %+v", closed[0])
	}
	if !closed[0].Opener.Label.IsNil() {
		t.Errorf("first activity has phantom opener %v", closed[0].Opener.Label)
	}
	if closed[1].Opener.Label != lbl("a", 3) || len(closed[1].Body) != 1 {
		t.Errorf("second activity = %+v", closed[1])
	}
	if len(open) != 1 || open[0].Label != lbl("a", 6) {
		t.Errorf("open tail = %v", open)
	}
}

func TestDecomposeEmptyAndClosersOnly(t *testing.T) {
	closed, open := DecomposeActivities(nil)
	if len(closed) != 0 || len(open) != 0 {
		t.Error("empty sequence produced activities")
	}
	seq := []message.Message{
		msg(lbl("a", 1), message.KindNonCommutative, "set"),
		msg(lbl("a", 2), message.KindNonCommutative, "set"),
	}
	closed, open = DecomposeActivities(seq)
	if len(closed) != 2 || len(open) != 0 {
		t.Errorf("closers-only: %d closed, %d open", len(closed), len(open))
	}
	if len(closed[0].Body) != 0 || len(closed[1].Body) != 0 {
		t.Error("closers-only activities have bodies")
	}
}

func TestAnalyzeTraceConforming(t *testing.T) {
	var seq []message.Message
	n := uint64(0)
	for c := 0; c < 3; c++ {
		for k := 0; k < 4; k++ {
			n++
			op := "inc"
			if k%2 == 1 {
				op = "dec"
			}
			seq = append(seq, msg(lbl("a", n), message.KindCommutative, op))
		}
		n++
		seq = append(seq, msg(lbl("a", n), message.KindRead, "rd"))
	}
	report, err := AnalyzeTrace(seq, applyCounter, &counterState{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Conforms() {
		t.Errorf("conforming trace reported unstable at %v", report.UnstableAt)
	}
	if report.Activities != 3 || report.OpenTail != 0 {
		t.Errorf("report = %+v", report)
	}
	if report.MeanActivitySize != 5 {
		t.Errorf("MeanActivitySize = %f, want 5", report.MeanActivitySize)
	}
}

func TestAnalyzeTraceDetectsNonCommutativeBody(t *testing.T) {
	// "double" is mislabeled commutative: interleavings of inc and double
	// do not commute, so the activity is not transition-preserving.
	seq := []message.Message{
		msg(lbl("a", 1), message.KindCommutative, "inc"),
		msg(lbl("a", 2), message.KindCommutative, "double"),
		msg(lbl("a", 3), message.KindRead, "rd"),
	}
	report, err := AnalyzeTrace(seq, applyCounter, &counterState{v: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if report.Conforms() {
		t.Fatal("mislabeled operation not detected")
	}
	if len(report.UnstableAt) != 1 || report.UnstableAt[0] != 0 {
		t.Errorf("UnstableAt = %v", report.UnstableAt)
	}
}

func TestAnalyzeTraceLargeBodyPairwiseFallback(t *testing.T) {
	// 8 commutative ops (> enumeration threshold) exercise the pairwise
	// path; then a mislabeled op among 8 must still be caught.
	var good []message.Message
	for i := uint64(1); i <= 8; i++ {
		good = append(good, msg(lbl("a", i), message.KindCommutative, "inc"))
	}
	good = append(good, msg(lbl("a", 9), message.KindRead, "rd"))
	report, err := AnalyzeTrace(good, applyCounter, &counterState{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Conforms() {
		t.Error("large commutative body reported unstable")
	}

	var bad []message.Message
	for i := uint64(1); i <= 7; i++ {
		bad = append(bad, msg(lbl("a", i), message.KindCommutative, "inc"))
	}
	bad = append(bad, msg(lbl("a", 8), message.KindCommutative, "double"))
	bad = append(bad, msg(lbl("a", 9), message.KindRead, "rd"))
	report, err = AnalyzeTrace(bad, applyCounter, &counterState{v: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if report.Conforms() {
		t.Error("pairwise fallback missed the mislabeled operation")
	}
}

func TestAnalyzeTraceThreadsState(t *testing.T) {
	// The second activity's stability depends on the state left by the
	// first (set 5, then inc/dec around a read).
	seq := []message.Message{
		func() message.Message {
			m := msg(lbl("a", 1), message.KindNonCommutative, "set")
			m.Body = []byte("5")
			return m
		}(),
		msg(lbl("a", 2), message.KindCommutative, "inc"),
		msg(lbl("a", 3), message.KindCommutative, "dec"),
		msg(lbl("a", 4), message.KindRead, "rd"),
	}
	report, err := AnalyzeTrace(seq, applyCounter, &counterState{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Conforms() || report.Activities != 2 {
		t.Errorf("report = %+v", report)
	}
}

func TestAnalyzeTraceValidation(t *testing.T) {
	if _, err := AnalyzeTrace(nil, nil, &counterState{}, 0); err == nil {
		t.Error("nil transition accepted")
	}
	if _, err := AnalyzeTrace(nil, applyCounter, nil, 0); err == nil {
		t.Error("nil state accepted")
	}
}
