package core

import (
	"fmt"
	"sync"

	"causalshare/internal/causal"
	"causalshare/internal/message"
)

// ItemFrontEnd implements the item-granularity refinement of §5.1: "This
// condition relates to decomposition of the data X into distinct items
// and scoping out the effects of messages on these items. It also
// subsumes the case where messages affect disjoint subsets of X."
//
// Operations are scoped to an item. Two operations on *different* items
// always commute — even if each is an overwrite — so the front-end leaves
// them concurrent; operations on the *same* item are chained in issue
// order by OccursAfter, so they are never concurrent and need no
// commutativity. Consequently every scoped operation is globally
// commutative from the replica's perspective (KindCommutative), and only
// explicit Sync operations close causal activities and create stable
// points.
//
// Compared with the plain FrontEnd — where every overwrite is a global
// closer — this keeps overwrite-heavy workloads on disjoint items fully
// concurrent, which is exactly the §5.1 concurrency gain. ItemFrontEnd is
// safe for concurrent use.
type ItemFrontEnd struct {
	bcast causal.Broadcaster

	mu      sync.Mutex
	origin  string
	labeler *message.Labeler
	// chain[item] is the last operation issued on item; the next same-
	// item operation occurs after it. A Sync occurs after every chain's
	// tip, which transitively covers the whole activity.
	chain map[string]message.Label
	// openOps counts operations issued since the last Sync.
	openOps int
	// lastSync anchors the first operation of each item after the
	// previous global stable point.
	lastSync message.Label
	cycle    uint64
}

// NewItemFrontEnd builds an item-scoped front-end for one client,
// co-located with the member owning broadcaster b. See NewFrontEnd for
// the id rules.
func NewItemFrontEnd(id string, b causal.Broadcaster) (*ItemFrontEnd, error) {
	if id == "" {
		return nil, fmt.Errorf("core: empty front-end id")
	}
	for i := 0; i < len(id); i++ {
		if id[i] == '~' {
			return nil, fmt.Errorf("core: front-end id %q contains reserved '~'", id)
		}
	}
	origin := b.Self() + "~" + id
	return &ItemFrontEnd{
		bcast:   b,
		origin:  origin,
		labeler: message.NewLabeler(origin),
		chain:   make(map[string]message.Label),
	}, nil
}

// NewItemComposer returns an item front-end without a broadcaster:
// ComposeScoped and ComposeSync work, the Submit variants fail. The
// simulator uses it. origin is used verbatim as the label origin.
func NewItemComposer(origin string) (*ItemFrontEnd, error) {
	if origin == "" {
		return nil, fmt.Errorf("core: empty composer origin")
	}
	return &ItemFrontEnd{
		origin:  origin,
		labeler: message.NewLabeler(origin),
		chain:   make(map[string]message.Label),
	}, nil
}

// ComposeScoped builds one operation scoped to item without broadcasting
// it. The operation is chained after the previous operation on the same
// item (or after the last Sync when the item is untouched this activity)
// and is concurrent with every other item's operations.
func (f *ItemFrontEnd) ComposeScoped(op, item string, body []byte) message.Message {
	f.mu.Lock()
	label := f.labeler.Next()
	prev, chained := f.chain[item]
	var deps message.OccursAfter
	if chained {
		deps = message.After(prev)
	} else {
		deps = message.After(f.lastSync)
	}
	f.chain[item] = label
	f.openOps++
	f.mu.Unlock()

	return message.Message{
		Label: label,
		Deps:  deps,
		// Globally commutative: same-item conflicts are serialized by the
		// dependency chain, cross-item operations commute by scoping.
		Kind: message.KindCommutative,
		Op:   op,
		Body: body,
	}
}

// SubmitScoped composes and broadcasts one scoped operation.
func (f *ItemFrontEnd) SubmitScoped(op, item string, body []byte) (message.Message, error) {
	if f.bcast == nil {
		return message.Message{}, fmt.Errorf("core: SubmitScoped on a composer-only front-end")
	}
	m := f.ComposeScoped(op, item, body)
	if err := f.bcast.Broadcast(m); err != nil {
		return message.Message{}, fmt.Errorf("core: submit scoped %q: %w", op, err)
	}
	return m, nil
}

// ComposeSync builds the global synchronization operation that occurs
// after every operation issued since the previous Sync, closing the
// causal activity: its delivery is the stable point at which all replicas
// agree on every item.
func (f *ItemFrontEnd) ComposeSync(op string, body []byte) message.Message {
	f.mu.Lock()
	label := f.labeler.Next()
	deps := make([]message.Label, 0, len(f.chain)+1)
	if len(f.chain) == 0 {
		deps = append(deps, f.lastSync)
	} else {
		// Each chain's tip transitively covers the whole chain, so the
		// AND-set stays O(items touched), not O(operations).
		for _, tip := range f.chain {
			deps = append(deps, tip)
		}
	}
	f.openOps = 0
	f.chain = make(map[string]message.Label)
	f.lastSync = label
	f.cycle++
	f.mu.Unlock()

	return message.Message{
		Label: label,
		Deps:  message.After(deps...),
		Kind:  message.KindRead,
		Op:    op,
		Body:  body,
	}
}

// Sync composes and broadcasts the activity-closing operation.
func (f *ItemFrontEnd) Sync(op string, body []byte) (message.Message, error) {
	if f.bcast == nil {
		return message.Message{}, fmt.Errorf("core: Sync on a composer-only front-end")
	}
	m := f.ComposeSync(op, body)
	if err := f.bcast.Broadcast(m); err != nil {
		return message.Message{}, fmt.Errorf("core: sync %q: %w", op, err)
	}
	return m, nil
}

// Cycle returns the number of Syncs issued.
func (f *ItemFrontEnd) Cycle() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cycle
}

// OpenOps returns the number of operations in the current activity.
func (f *ItemFrontEnd) OpenOps() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.openOps
}
