package core

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"causalshare/internal/graph"
	"causalshare/internal/message"
)

// counterState is the paper's running example: an integer with
// commutative inc/dec and a non-commutative set.
type counterState struct {
	v int64
}

func (c *counterState) Clone() State { return &counterState{v: c.v} }

func (c *counterState) Equal(o State) bool {
	oc, ok := o.(*counterState)
	return ok && oc.v == c.v
}

func (c *counterState) Digest() string { return "ctr:" + strconv.FormatInt(c.v, 10) }

func applyCounter(s State, m message.Message) State {
	c, ok := s.(*counterState)
	if !ok {
		return s
	}
	switch m.Op {
	case "inc":
		c.v++
	case "dec":
		c.v--
	case "set":
		n, _ := strconv.ParseInt(string(m.Body), 10, 64)
		c.v = n
	case "double":
		c.v *= 2
	case "rd":
		// reads do not change state
	}
	return c
}

func lbl(o string, s uint64) message.Label { return message.Label{Origin: o, Seq: s} }

func msg(l message.Label, kind message.Kind, op string, deps ...message.Label) message.Message {
	return message.Message{Label: l, Deps: message.After(deps...), Kind: kind, Op: op}
}

func TestCommute(t *testing.T) {
	s0 := &counterState{v: 5}
	inc := msg(lbl("a", 1), message.KindCommutative, "inc")
	dec := msg(lbl("b", 1), message.KindCommutative, "dec")
	double := msg(lbl("c", 1), message.KindNonCommutative, "double")
	tests := []struct {
		name string
		a, b message.Message
		want bool
	}{
		{"inc commutes with dec", inc, dec, true},
		{"inc commutes with inc", inc, msg(lbl("d", 1), message.KindCommutative, "inc"), true},
		{"inc does not commute with double", inc, double, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Commute(applyCounter, s0, tt.a, tt.b); got != tt.want {
				t.Errorf("Commute = %v, want %v", got, tt.want)
			}
		})
	}
	if s0.v != 5 {
		t.Errorf("Commute mutated the probe state: %d", s0.v)
	}
}

func TestTransitionPreserving(t *testing.T) {
	open := msg(lbl("n", 1), message.KindNonCommutative, "set")
	open.Body = []byte("10")
	inc := msg(lbl("a", 1), message.KindCommutative, "inc", open.Label)
	dec := msg(lbl("b", 1), message.KindCommutative, "dec", open.Label)
	close1 := msg(lbl("n", 2), message.KindNonCommutative, "rd", inc.Label, dec.Label)

	t.Run("commutative diamond is preserving", func(t *testing.T) {
		g := graph.New()
		msgs := map[message.Label]message.Message{}
		for _, m := range []message.Message{open, inc, dec, close1} {
			if err := g.AddMessage(m); err != nil {
				t.Fatal(err)
			}
			msgs[m.Label] = m
		}
		ok, err := TransitionPreserving(g, msgs, applyCounter, &counterState{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Error("inc/dec diamond not transition-preserving")
		}
	})

	t.Run("non-commutative pair is not preserving", func(t *testing.T) {
		double := msg(lbl("c", 1), message.KindCommutative, "double", open.Label)
		g := graph.New()
		msgs := map[message.Label]message.Message{}
		for _, m := range []message.Message{open, inc, double} {
			if err := g.AddMessage(m); err != nil {
				t.Fatal(err)
			}
			msgs[m.Label] = m
		}
		ok, err := TransitionPreserving(g, msgs, applyCounter, &counterState{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Error("inc/double reported transition-preserving")
		}
	})

	t.Run("missing message is an error", func(t *testing.T) {
		g := graph.New()
		if err := g.AddMessage(inc); err != nil {
			t.Fatal(err)
		}
		_, err := TransitionPreserving(g, map[message.Label]message.Message{}, applyCounter, &counterState{}, 0)
		if err == nil {
			t.Error("missing message not reported")
		}
	})

	t.Run("empty graph is trivially preserving", func(t *testing.T) {
		ok, err := TransitionPreserving(graph.New(), nil, applyCounter, &counterState{}, 0)
		if err != nil || !ok {
			t.Errorf("empty graph: ok=%v err=%v", ok, err)
		}
	})
}

// fakeBcast records broadcast messages without a network.
type fakeBcast struct {
	mu   sync.Mutex
	sent []message.Message
	fail error
}

func (f *fakeBcast) Self() string { return "fake" }

func (f *fakeBcast) Broadcast(m message.Message) error {
	if f.fail != nil {
		return f.fail
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sent = append(f.sent, m)
	return nil
}

func (f *fakeBcast) Close() error { return nil }

func TestNewFrontEndValidation(t *testing.T) {
	b := &fakeBcast{}
	if _, err := NewFrontEnd("", b); err == nil {
		t.Error("empty id accepted")
	}
	if _, err := NewFrontEnd("cli~ent", b); err == nil {
		t.Error("id with reserved '~' accepted")
	}
	if _, err := NewFrontEnd("client", b); err != nil {
		t.Errorf("valid id rejected: %v", err)
	}
}

func TestFrontEndProtocolSkeleton(t *testing.T) {
	// Reproduces the §6.1 client() skeleton step by step.
	b := &fakeBcast{}
	f, err := NewFrontEnd("cli", b)
	if err != nil {
		t.Fatal(err)
	}
	// 1. First commutative op: no predecessor at all.
	c1, err := f.Submit("inc", message.KindCommutative, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !c1.Deps.Empty() {
		t.Errorf("first commutative deps = %v, want empty", c1.Deps)
	}
	// 2. Second commutative op: still unconstrained (no Ncid yet),
	// concurrent with c1.
	c2, _ := f.Submit("dec", message.KindCommutative, nil)
	if !c2.Deps.Empty() {
		t.Errorf("second commutative deps = %v, want empty", c2.Deps)
	}
	// 3. Non-commutative closes the cycle: after c1 AND c2.
	n1, _ := f.Submit("set", message.KindNonCommutative, []byte("9"))
	if !n1.Deps.Contains(c1.Label) || !n1.Deps.Contains(c2.Label) || n1.Deps.Len() != 2 {
		t.Errorf("closer deps = %v, want (c1 ∧ c2)", n1.Deps)
	}
	// 4. Commutative after the closer: ordered after Ncid only.
	c3, _ := f.Submit("inc", message.KindCommutative, nil)
	if c3.Deps.Len() != 1 || !c3.Deps.Contains(n1.Label) {
		t.Errorf("post-cycle commutative deps = %v, want (n1)", c3.Deps)
	}
	// 5. Non-commutative with pending {Cid}: after the set, not after n1
	// directly (transitively ordered via c3).
	n2, _ := f.Submit("set", message.KindNonCommutative, []byte("1"))
	if n2.Deps.Len() != 1 || !n2.Deps.Contains(c3.Label) {
		t.Errorf("second closer deps = %v, want (c3)", n2.Deps)
	}
	// 6. Non-commutative with empty {Cid}: directly after the last Ncid.
	n3, _ := f.Submit("set", message.KindNonCommutative, []byte("2"))
	if n3.Deps.Len() != 1 || !n3.Deps.Contains(n2.Label) {
		t.Errorf("back-to-back closer deps = %v, want (n2)", n3.Deps)
	}
	if got := f.Cycle(); got != 3 {
		t.Errorf("Cycle = %d, want 3", got)
	}
	if len(b.sent) != 6 {
		t.Errorf("broadcast count = %d, want 6", len(b.sent))
	}
}

func TestFrontEndReadOrdersLikeNonCommutative(t *testing.T) {
	f, err := NewFrontEnd("cli", &fakeBcast{})
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := f.Submit("inc", message.KindCommutative, nil)
	rd, _ := f.Submit("rd", message.KindRead, nil)
	if !rd.Deps.Contains(c1.Label) {
		t.Errorf("read deps = %v, want to contain %v (inc -> rd)", rd.Deps, c1.Label)
	}
	if f.PendingCommutative() != 0 {
		t.Error("read did not close the commutative set")
	}
}

func TestFrontEndRejectsControlKind(t *testing.T) {
	f, err := NewFrontEnd("cli", &fakeBcast{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit("x", message.KindControl, nil); err == nil {
		t.Error("KindControl accepted")
	}
}

func TestFrontEndBroadcastFailure(t *testing.T) {
	b := &fakeBcast{fail: fmt.Errorf("boom")}
	f, err := NewFrontEnd("cli", b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit("inc", message.KindCommutative, nil); err == nil {
		t.Error("broadcast failure not surfaced")
	}
}

func TestFrontEndObserveCrossClient(t *testing.T) {
	f, err := NewFrontEnd("cli1", &fakeBcast{})
	if err != nil {
		t.Fatal(err)
	}
	// Another client's commutative op joins the open cycle.
	other := msg(lbl("cli2", 1), message.KindCommutative, "inc")
	f.Observe(other)
	if f.PendingCommutative() != 1 {
		t.Fatalf("observed commutative not tracked")
	}
	n, _ := f.Submit("set", message.KindNonCommutative, []byte("3"))
	if !n.Deps.Contains(other.Label) {
		t.Errorf("closer deps %v missing observed op %v", n.Deps, other.Label)
	}
	// Another client's closer resets the set and becomes the new Ncid.
	f.Observe(msg(lbl("cli2", 2), message.KindCommutative, "inc"))
	closer := msg(lbl("cli2", 3), message.KindNonCommutative, "set")
	f.Observe(closer)
	if f.PendingCommutative() != 0 {
		t.Error("observed closer did not reset {Cid}")
	}
	c, _ := f.Submit("inc", message.KindCommutative, nil)
	if c.Deps.Len() != 1 || !c.Deps.Contains(closer.Label) {
		t.Errorf("post-observe commutative deps = %v, want (%v)", c.Deps, closer.Label)
	}
	// Own messages are not double counted.
	f.Observe(c)
	if f.PendingCommutative() != 1 {
		t.Error("own message observation changed tracking")
	}
}

func TestActivityValidate(t *testing.T) {
	open := msg(lbl("n", 1), message.KindNonCommutative, "set")
	c1 := msg(lbl("a", 1), message.KindCommutative, "inc", open.Label)
	c2 := msg(lbl("b", 1), message.KindCommutative, "dec", open.Label)
	closer := msg(lbl("n", 2), message.KindNonCommutative, "set", c1.Label, c2.Label)
	tests := []struct {
		name    string
		act     Activity
		wantErr bool
	}{
		{"well-formed", Activity{Opener: open, Body: []message.Message{c1, c2}, Closer: closer}, false},
		{"no closer", Activity{Opener: open, Body: []message.Message{c1}}, true},
		{"closer wrong kind", Activity{Closer: c1}, true},
		{"body not commutative", Activity{
			Opener: open,
			Body:   []message.Message{msg(lbl("x", 1), message.KindNonCommutative, "set", open.Label)},
			Closer: closer,
		}, true},
		{"body missing opener dep", Activity{
			Opener: open,
			Body:   []message.Message{msg(lbl("x", 1), message.KindCommutative, "inc")},
			Closer: closer,
		}, true},
		{"closer missing body dep", Activity{
			Opener: open,
			Body:   []message.Message{c1, msg(lbl("z", 1), message.KindCommutative, "inc", open.Label)},
			Closer: closer,
		}, true},
		{"empty body closer chains opener", Activity{
			Opener: open,
			Closer: msg(lbl("n", 2), message.KindNonCommutative, "set", open.Label),
		}, false},
		{"empty body closer missing opener", Activity{
			Opener: open,
			Closer: msg(lbl("n", 2), message.KindNonCommutative, "set"),
		}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.act.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestActivityIsStable(t *testing.T) {
	open := msg(lbl("n", 1), message.KindNonCommutative, "set")
	open.Body = []byte("100")
	mk := func(ops ...string) Activity {
		var body []message.Message
		var bodyLabels []message.Label
		for i, op := range ops {
			m := msg(lbl("c", uint64(i+1)), message.KindCommutative, op, open.Label)
			body = append(body, m)
			bodyLabels = append(bodyLabels, m.Label)
		}
		return Activity{
			Opener: open,
			Body:   body,
			Closer: msg(lbl("n", 2), message.KindNonCommutative, "rd", bodyLabels...),
		}
	}
	stable, err := mk("inc", "dec", "inc").IsStable(applyCounter, &counterState{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !stable {
		t.Error("inc/dec/inc activity not stable")
	}
	unstable, err := mk("inc", "double").IsStable(applyCounter, &counterState{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if unstable {
		t.Error("inc/double activity reported stable")
	}
}

func TestNewReplicaValidation(t *testing.T) {
	if _, err := NewReplica(ReplicaConfig{Self: "r", Apply: applyCounter}); err == nil {
		t.Error("nil initial state accepted")
	}
	if _, err := NewReplica(ReplicaConfig{Self: "r", Initial: &counterState{}}); err == nil {
		t.Error("nil transition accepted")
	}
}

func TestReplicaStablePoints(t *testing.T) {
	var stables []StablePoint
	r, err := NewReplica(ReplicaConfig{
		Self:    "r1",
		Initial: &counterState{},
		Apply:   applyCounter,
		OnStable: func(sp StablePoint, _ State) {
			stables = append(stables, sp)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Deliver(msg(lbl("c", 1), message.KindCommutative, "inc"))
	r.Deliver(msg(lbl("c", 2), message.KindCommutative, "inc"))
	if r.Cycle() != 0 {
		t.Fatal("commutative deliveries closed a cycle")
	}
	r.Deliver(msg(lbl("c", 3), message.KindNonCommutative, "set")) // set with empty body -> 0
	if r.Cycle() != 1 {
		t.Fatal("non-commutative delivery did not close the cycle")
	}
	r.Deliver(msg(lbl("c", 4), message.KindCommutative, "inc"))
	r.Deliver(msg(lbl("c", 5), message.KindRead, "rd"))
	points := r.StablePoints()
	if len(points) != 2 {
		t.Fatalf("stable points = %d, want 2", len(points))
	}
	if points[0].ActivitySize != 3 || points[1].ActivitySize != 2 {
		t.Errorf("activity sizes = %d,%d want 3,2", points[0].ActivitySize, points[1].ActivitySize)
	}
	if points[0].Digest != "ctr:0" || points[1].Digest != "ctr:1" {
		t.Errorf("digests = %q,%q", points[0].Digest, points[1].Digest)
	}
	if len(stables) != 2 {
		t.Errorf("OnStable fired %d times, want 2", len(stables))
	}
	if r.Applied() != 5 {
		t.Errorf("Applied = %d, want 5", r.Applied())
	}
}

func TestReplicaReadStableVsReadNow(t *testing.T) {
	r, err := NewReplica(ReplicaConfig{Self: "r1", Initial: &counterState{}, Apply: applyCounter})
	if err != nil {
		t.Fatal(err)
	}
	r.Deliver(msg(lbl("c", 1), message.KindCommutative, "inc"))
	now, ok := r.ReadNow().(*counterState)
	if !ok {
		t.Fatal("ReadNow wrong type")
	}
	if now.v != 1 {
		t.Errorf("ReadNow = %d, want 1", now.v)
	}
	st, cycle := r.ReadStable()
	stable, ok := st.(*counterState)
	if !ok {
		t.Fatal("ReadStable wrong type")
	}
	if stable.v != 0 || cycle != 0 {
		t.Errorf("ReadStable = %d at cycle %d, want 0 at 0 (mid-activity)", stable.v, cycle)
	}
	// Mutating the returned copy must not affect the replica.
	stable.v = 99
	st2, _ := r.ReadStable()
	if st2.(*counterState).v != 0 {
		t.Error("ReadStable returned aliased state")
	}
}

func TestReplicaDeferredRead(t *testing.T) {
	r, err := NewReplica(ReplicaConfig{Self: "r1", Initial: &counterState{}, Apply: applyCounter})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		st    State
		cycle uint64
		err   error
	}
	got := make(chan result, 1)
	go func() {
		st, cy, err := r.ReadDeferred(context.Background())
		got <- result{st, cy, err}
	}()
	time.Sleep(5 * time.Millisecond)
	r.Deliver(msg(lbl("c", 1), message.KindCommutative, "inc"))
	select {
	case <-got:
		t.Fatal("deferred read returned mid-activity")
	case <-time.After(10 * time.Millisecond):
	}
	r.Deliver(msg(lbl("c", 2), message.KindNonCommutative, "set"))
	select {
	case res := <-got:
		if res.err != nil {
			t.Fatal(res.err)
		}
		if res.cycle != 1 {
			t.Errorf("cycle = %d, want 1", res.cycle)
		}
		if res.st.Digest() != "ctr:0" {
			t.Errorf("digest = %q", res.st.Digest())
		}
	case <-time.After(time.Second):
		t.Fatal("deferred read never released at stable point")
	}
}

func TestReplicaTrimStablePoints(t *testing.T) {
	r, err := NewReplica(ReplicaConfig{Self: "r1", Initial: &counterState{}, Apply: applyCounter})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 5; i++ {
		r.Deliver(msg(lbl("c", i), message.KindNonCommutative, "set"))
	}
	if dropped := r.TrimStablePoints(2); dropped != 3 {
		t.Fatalf("dropped = %d, want 3", dropped)
	}
	points := r.StablePoints()
	if len(points) != 2 || points[0].Cycle != 4 || points[1].Cycle != 5 {
		t.Fatalf("points after trim = %+v", points)
	}
	if r.Cycle() != 5 {
		t.Errorf("Cycle = %d after trim", r.Cycle())
	}
	if dropped := r.TrimStablePoints(10); dropped != 0 {
		t.Errorf("over-trim dropped %d", dropped)
	}
	if dropped := r.TrimStablePoints(-1); dropped != 2 {
		t.Errorf("negative keep dropped %d, want 2", dropped)
	}
}

func TestReplicaDeferredReadContextCancel(t *testing.T) {
	r, err := NewReplica(ReplicaConfig{Self: "r1", Initial: &counterState{}, Apply: applyCounter})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, _, err := r.ReadDeferred(ctx); err == nil {
		t.Error("cancelled deferred read returned nil error")
	}
}
