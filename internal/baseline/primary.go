package baseline

import (
	"encoding/binary"
	"fmt"
	"sync"

	"causalshare/internal/group"
	"causalshare/internal/message"
	"causalshare/internal/transport"
)

// Primary is the primary-copy baseline: every operation is forwarded to
// the group's rank-0 member, which serializes operations in arrival order
// and rebroadcasts them with a global sequence number; members apply in
// sequence order. Non-primary submissions cost an extra network hop, and
// the primary is a throughput bottleneck — the trade-offs the paper's
// decentralized model avoids.
type Primary struct {
	self    string
	grp     *group.Group
	conn    transport.Conn
	leader  string
	deliver func(message.Message)

	mu     sync.Mutex
	closed bool
	// Leader state: next sequence number to assign.
	nextAssign uint64
	// Member state: sequence reassembly.
	nextApply uint64
	held      map[uint64]message.Message

	wg sync.WaitGroup
}

// NewPrimary builds one member's endpoint of the primary-copy protocol.
func NewPrimary(self string, grp *group.Group, conn transport.Conn, deliver func(message.Message)) (*Primary, error) {
	if !grp.Contains(self) {
		return nil, fmt.Errorf("baseline: %q is not a member", self)
	}
	if deliver == nil {
		return nil, fmt.Errorf("baseline: nil deliver func")
	}
	p := &Primary{
		self: self, grp: grp, conn: conn,
		leader:     grp.Members()[0],
		deliver:    deliver,
		nextAssign: 1,
		nextApply:  1,
		held:       make(map[uint64]message.Message),
	}
	p.wg.Add(1)
	go p.recvLoop()
	return p, nil
}

// Submit sends one operation into the protocol: directly sequenced if
// self is the primary, otherwise forwarded.
func (p *Primary) Submit(m message.Message) error {
	if err := m.Validate(); err != nil {
		return fmt.Errorf("baseline: submit: %w", err)
	}
	data, err := m.MarshalBinary()
	if err != nil {
		return fmt.Errorf("baseline: encode: %w", err)
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	isLeader := p.self == p.leader
	p.mu.Unlock()
	if isLeader {
		p.sequence(m)
		return nil
	}
	if err := p.conn.Send(p.leader, append([]byte{frameForward}, data...)); err != nil {
		return fmt.Errorf("baseline: forward: %w", err)
	}
	return nil
}

// sequence assigns the next global number and fans the operation out.
func (p *Primary) sequence(m message.Message) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	seq := p.nextAssign
	p.nextAssign++
	p.mu.Unlock()
	data, err := m.MarshalBinary()
	if err != nil {
		return
	}
	frame := append([]byte{frameApply}, encodeSeqFrame(seq, data)...)
	for _, peer := range p.grp.Others(p.self) {
		_ = p.conn.Send(peer, frame) // reliability is the transport's concern in this baseline
	}
	p.apply(seq, m)
}

// apply releases contiguously sequenced operations to the application.
func (p *Primary) apply(seq uint64, m message.Message) {
	p.mu.Lock()
	p.held[seq] = m
	var ready []message.Message
	for {
		next, ok := p.held[p.nextApply]
		if !ok {
			break
		}
		delete(p.held, p.nextApply)
		p.nextApply++
		ready = append(ready, next)
	}
	p.mu.Unlock()
	for _, r := range ready {
		p.deliver(r)
	}
}

// Close stops the endpoint.
func (p *Primary) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	err := p.conn.Close()
	p.wg.Wait()
	return err
}

func (p *Primary) recvLoop() {
	defer p.wg.Done()
	for {
		env, err := p.conn.Recv()
		if err != nil {
			return
		}
		if len(env.Payload) < 1 {
			continue
		}
		kind, body := env.Payload[0], env.Payload[1:]
		switch kind {
		case frameForward:
			if p.self != p.leader {
				continue
			}
			var m message.Message
			if err := m.UnmarshalBinary(body); err != nil {
				continue
			}
			p.sequence(m)
		case frameApply:
			seq, data, err := decodeSeqFrame(body)
			if err != nil {
				continue
			}
			var m message.Message
			if err := m.UnmarshalBinary(data); err != nil {
				continue
			}
			p.apply(seq, m)
		}
	}
}

func encodeSeqFrame(seq uint64, data []byte) []byte {
	buf := make([]byte, 0, len(data)+binary.MaxVarintLen64)
	buf = binary.AppendUvarint(buf, seq)
	return append(buf, data...)
}

func decodeSeqFrame(body []byte) (uint64, []byte, error) {
	seq, used := binary.Uvarint(body)
	if used <= 0 {
		return 0, nil, fmt.Errorf("baseline: truncated seq")
	}
	return seq, body[used:], nil
}
