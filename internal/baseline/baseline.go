// Package baseline implements the comparison protocols the paper's
// approach is evaluated against:
//
//   - Agreement: an explicit coordinator-driven agreement round
//     (PROPOSE → VOTE → DECIDE, 2PC-shaped) that replicas would need at
//     every synchronization point if they could not detect stable points
//     locally. Experiment E4 counts its messages and latency against the
//     zero extra messages of stable-point detection.
//   - Primary: a primary-copy protocol — all operations are forwarded to
//     a fixed primary which serializes and rebroadcasts them. The classic
//     alternative to decentralized ordering; used in ablations.
//
// Both run over the live transport substrate so their costs are measured
// under the same conditions as the model's protocols.
package baseline

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"causalshare/internal/group"
	"causalshare/internal/transport"
)

// ErrClosed is returned by operations on closed protocol instances.
var ErrClosed = errors.New("baseline: closed")

// frame tags.
const (
	framePropose byte = iota + 1
	frameVote
	frameDecide
	frameForward
	frameApply
)

// AgreementStats counts the cost of explicit agreement rounds.
type AgreementStats struct {
	// Rounds is the number of completed agreements.
	Rounds uint64
	// Messages is the point-to-point frames those rounds used.
	Messages uint64
}

// Coordinator drives explicit agreement rounds among a group. One member
// is the coordinator (rank 0); it proposes a value (a state digest),
// collects votes from all members, and broadcasts the decision. The
// member-side logic lives in Participant.
type Coordinator struct {
	self string
	grp  *group.Group
	conn transport.Conn

	mu      sync.Mutex
	closed  bool
	nextID  uint64
	waiting map[uint64]*roundState
	stats   AgreementStats

	wg sync.WaitGroup
}

type roundState struct {
	votes int
	done  chan struct{}
}

// NewCoordinator builds the coordinator endpoint; self must be the
// group's rank-0 member.
func NewCoordinator(self string, grp *group.Group, conn transport.Conn) (*Coordinator, error) {
	if grp.Rank(self) != 0 {
		return nil, fmt.Errorf("baseline: coordinator must be rank 0, %q is rank %d", self, grp.Rank(self))
	}
	c := &Coordinator{
		self: self, grp: grp, conn: conn,
		waiting: make(map[uint64]*roundState),
	}
	c.wg.Add(1)
	go c.recvLoop()
	return c, nil
}

// Agree runs one agreement round on value, blocking until every member
// voted and the decision is broadcast. It returns the frames the round
// consumed.
func (c *Coordinator) Agree(value []byte) (uint64, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, ErrClosed
	}
	c.nextID++
	id := c.nextID
	st := &roundState{done: make(chan struct{})}
	c.waiting[id] = st
	c.mu.Unlock()

	others := c.grp.Others(c.self)
	frames := uint64(0)
	propose := encodeRound(framePropose, id, value)
	for _, p := range others {
		if err := c.conn.Send(p, propose); err != nil {
			return frames, fmt.Errorf("baseline: propose to %q: %w", p, err)
		}
		frames++
	}
	<-st.done
	frames += uint64(len(others)) // the votes received
	decide := encodeRound(frameDecide, id, value)
	for _, p := range others {
		if err := c.conn.Send(p, decide); err != nil {
			return frames, fmt.Errorf("baseline: decide to %q: %w", p, err)
		}
		frames++
	}
	c.mu.Lock()
	delete(c.waiting, id)
	c.stats.Rounds++
	c.stats.Messages += frames
	c.mu.Unlock()
	return frames, nil
}

// Stats returns accumulated agreement costs.
func (c *Coordinator) Stats() AgreementStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Close stops the coordinator.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	c.wg.Wait()
	return err
}

func (c *Coordinator) recvLoop() {
	defer c.wg.Done()
	need := c.grp.Size() - 1
	for {
		env, err := c.conn.Recv()
		if err != nil {
			return
		}
		kind, id, _, err := decodeRound(env.Payload)
		if err != nil || kind != frameVote {
			continue
		}
		c.mu.Lock()
		st, ok := c.waiting[id]
		if ok {
			st.votes++
			if st.votes == need {
				close(st.done)
			}
		}
		c.mu.Unlock()
	}
}

// Participant is the member-side of explicit agreement: it votes on every
// proposal and records decisions.
type Participant struct {
	self string
	conn transport.Conn

	mu       sync.Mutex
	closed   bool
	decided  uint64
	lastOK   []byte
	onDecide func(id uint64, value []byte)

	wg sync.WaitGroup
}

// NewParticipant builds a participant endpoint. onDecide may be nil.
func NewParticipant(self string, conn transport.Conn, onDecide func(uint64, []byte)) *Participant {
	p := &Participant{self: self, conn: conn, onDecide: onDecide}
	p.wg.Add(1)
	go p.recvLoop()
	return p
}

// Decided returns the number of decisions observed.
func (p *Participant) Decided() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.decided
}

// Close stops the participant.
func (p *Participant) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	err := p.conn.Close()
	p.wg.Wait()
	return err
}

func (p *Participant) recvLoop() {
	defer p.wg.Done()
	for {
		env, err := p.conn.Recv()
		if err != nil {
			return
		}
		kind, id, value, err := decodeRound(env.Payload)
		if err != nil {
			continue
		}
		switch kind {
		case framePropose:
			_ = p.conn.Send(env.From, encodeRound(frameVote, id, nil)) // retried by coordinator timeouts in real systems
		case frameDecide:
			p.mu.Lock()
			p.decided++
			p.lastOK = value
			cb := p.onDecide
			p.mu.Unlock()
			if cb != nil {
				cb(id, value)
			}
		}
	}
}

func encodeRound(kind byte, id uint64, value []byte) []byte {
	buf := []byte{kind}
	buf = binary.AppendUvarint(buf, id)
	buf = binary.AppendUvarint(buf, uint64(len(value)))
	return append(buf, value...)
}

func decodeRound(data []byte) (byte, uint64, []byte, error) {
	if len(data) < 1 {
		return 0, 0, nil, fmt.Errorf("baseline: empty frame")
	}
	kind := data[0]
	data = data[1:]
	id, used := binary.Uvarint(data)
	if used <= 0 {
		return 0, 0, nil, fmt.Errorf("baseline: truncated round id")
	}
	data = data[used:]
	n, used := binary.Uvarint(data)
	if used <= 0 || uint64(len(data)-used) < n {
		return 0, 0, nil, fmt.Errorf("baseline: truncated value")
	}
	return kind, id, data[used : used+int(n)], nil
}
