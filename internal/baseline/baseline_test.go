package baseline

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"causalshare/internal/group"
	"causalshare/internal/message"
	"causalshare/internal/transport"
)

func TestCoordinatorMustBeRankZero(t *testing.T) {
	grp := group.MustNew("g", []string{"a", "b"})
	net := transport.NewChanNet(transport.FaultModel{})
	defer func() { _ = net.Close() }()
	conn, _ := net.Attach("b")
	if _, err := NewCoordinator("b", grp, conn); err == nil {
		t.Error("non-rank-0 coordinator accepted")
	}
}

func TestAgreementRound(t *testing.T) {
	ids := []string{"a", "b", "c", "d"}
	grp := group.MustNew("g", ids)
	net := transport.NewChanNet(transport.FaultModel{})
	defer func() { _ = net.Close() }()

	connA, _ := net.Attach("a")
	coord, err := NewCoordinator("a", grp, connA)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = coord.Close() }()

	var parts []*Participant
	decisions := make(chan []byte, 16)
	for _, id := range ids[1:] {
		conn, _ := net.Attach(id)
		p := NewParticipant(id, conn, func(_ uint64, v []byte) {
			decisions <- v
		})
		parts = append(parts, p)
	}
	defer func() {
		for _, p := range parts {
			_ = p.Close()
		}
	}()

	frames, err := coord.Agree([]byte("digest-1"))
	if err != nil {
		t.Fatal(err)
	}
	// n-1 proposes + n-1 votes + n-1 decides = 3(n-1) = 9.
	if frames != 9 {
		t.Errorf("frames = %d, want 9", frames)
	}
	for i := 0; i < len(ids)-1; i++ {
		select {
		case v := <-decisions:
			if string(v) != "digest-1" {
				t.Errorf("decision = %q", v)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("participant missed decision")
		}
	}
	st := coord.Stats()
	if st.Rounds != 1 || st.Messages != 9 {
		t.Errorf("stats = %+v", st)
	}
	for _, p := range parts {
		if got := p.Decided(); got != 1 {
			t.Errorf("participant Decided = %d, want 1", got)
		}
	}
}

func TestAgreementScalesLinearly(t *testing.T) {
	// E4's point: explicit agreement costs 3(n-1) frames per sync point;
	// stable-point detection costs zero.
	for _, n := range []int{3, 6, 9} {
		ids := make([]string, n)
		for i := range ids {
			ids[i] = fmt.Sprintf("m%02d", i)
		}
		grp := group.MustNew("g", ids)
		net := transport.NewChanNet(transport.FaultModel{})
		connA, _ := net.Attach(ids[0])
		coord, err := NewCoordinator(ids[0], grp, connA)
		if err != nil {
			t.Fatal(err)
		}
		var parts []*Participant
		for _, id := range ids[1:] {
			conn, _ := net.Attach(id)
			parts = append(parts, NewParticipant(id, conn, nil))
		}
		frames, err := coord.Agree([]byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(3 * (n - 1)); frames != want {
			t.Errorf("n=%d frames = %d, want %d", n, frames, want)
		}
		_ = coord.Close()
		for _, p := range parts {
			_ = p.Close()
		}
		_ = net.Close()
	}
}

func TestAgreeAfterClose(t *testing.T) {
	grp := group.MustNew("g", []string{"a", "b"})
	net := transport.NewChanNet(transport.FaultModel{})
	defer func() { _ = net.Close() }()
	connA, _ := net.Attach("a")
	coord, err := NewCoordinator("a", grp, connA)
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Agree([]byte("x")); err != ErrClosed {
		t.Errorf("Agree after close = %v, want ErrClosed", err)
	}
}

type primaryStack struct {
	net      *transport.ChanNet
	prims    map[string]*Primary
	mu       sync.Mutex
	orders   map[string][]message.Label
	delivers map[string]int
}

func newPrimaryStack(t *testing.T, ids []string, faults transport.FaultModel) *primaryStack {
	t.Helper()
	grp := group.MustNew("g", ids)
	net := transport.NewChanNet(faults)
	s := &primaryStack{
		net: net, prims: map[string]*Primary{},
		orders: map[string][]message.Label{}, delivers: map[string]int{},
	}
	for _, id := range ids {
		conn, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		id := id
		p, err := NewPrimary(id, grp, conn, func(m message.Message) {
			s.mu.Lock()
			s.orders[id] = append(s.orders[id], m.Label)
			s.delivers[id]++
			s.mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		s.prims[id] = p
	}
	return s
}

func (s *primaryStack) close() {
	for _, p := range s.prims {
		_ = p.Close()
	}
	_ = s.net.Close()
}

func (s *primaryStack) waitDelivered(t *testing.T, want int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		done := len(s.delivers) > 0
		for _, n := range s.delivers {
			if n < want {
				done = false
			}
		}
		count := len(s.delivers)
		s.mu.Unlock()
		if done && count == len(s.prims) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d deliveries: %v", want, s.delivers)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPrimarySequencesIdentically(t *testing.T) {
	ids := []string{"a", "b", "c"}
	s := newPrimaryStack(t, ids, transport.FaultModel{
		MinDelay: 0, MaxDelay: 2 * time.Millisecond, Seed: 3,
	})
	defer s.close()

	const per = 10
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			for k := uint64(1); k <= per; k++ {
				m := message.Message{
					Label: message.Label{Origin: id, Seq: k},
					Kind:  message.KindNonCommutative,
					Op:    "w",
				}
				if err := s.prims[id].Submit(m); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}(i, id)
	}
	wg.Wait()
	s.waitDelivered(t, len(ids)*per, 10*time.Second)
	s.mu.Lock()
	defer s.mu.Unlock()
	ref := s.orders[ids[0]]
	for _, id := range ids[1:] {
		got := s.orders[id]
		if len(got) != len(ref) {
			t.Fatalf("member %s delivered %d, ref %d", id, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("member %s order diverges at %d", id, i)
			}
		}
	}
}

func TestPrimaryRejectsInvalid(t *testing.T) {
	s := newPrimaryStack(t, []string{"a", "b"}, transport.FaultModel{})
	defer s.close()
	if err := s.prims["a"].Submit(message.Message{}); err == nil {
		t.Error("invalid message accepted")
	}
}

func TestPrimarySubmitAfterClose(t *testing.T) {
	s := newPrimaryStack(t, []string{"a", "b"}, transport.FaultModel{})
	defer s.close()
	_ = s.prims["b"].Close()
	err := s.prims["b"].Submit(message.Message{
		Label: message.Label{Origin: "b", Seq: 1},
		Kind:  message.KindCommutative, Op: "w",
	})
	if err == nil {
		t.Error("submit after close succeeded")
	}
}
