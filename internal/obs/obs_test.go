package obs

import (
	"strings"
	"testing"

	"causalshare/internal/core"
	"causalshare/internal/message"
)

func lbl(o string, s uint64) message.Label { return message.Label{Origin: o, Seq: s} }

func msg(l message.Label, deps ...message.Label) message.Message {
	return message.Message{Label: l, Deps: message.After(deps...), Kind: message.KindCommutative, Op: "op"}
}

func TestTraceRecordsAndForwards(t *testing.T) {
	tr := NewTrace()
	forwarded := 0
	obs := tr.Observer("a", func(message.Message) { forwarded++ })
	obs(msg(lbl("x", 1)))
	obs(msg(lbl("x", 2)))
	if forwarded != 2 {
		t.Errorf("forwarded = %d", forwarded)
	}
	if got := tr.Sequence("a"); len(got) != 2 {
		t.Errorf("sequence = %v", got)
	}
	// nil next must not panic.
	tr.Observer("b", nil)(msg(lbl("y", 1)))
	if m := tr.Members(); len(m) != 2 || m[0] != "a" || m[1] != "b" {
		t.Errorf("Members = %v", m)
	}
}

func TestExtractGraph(t *testing.T) {
	tr := NewTrace()
	a := tr.Observer("a", nil)
	b := tr.Observer("b", nil)
	m1 := msg(lbl("x", 1))
	m2 := msg(lbl("y", 1), m1.Label)
	// Both members deliver both messages (different order is fine).
	a(m1)
	a(m2)
	b(m1)
	b(m2)
	g, err := tr.ExtractGraph()
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Fatalf("graph has %d nodes", g.Len())
	}
	if !g.HappensBefore(m1.Label, m2.Label) {
		t.Error("extracted graph lost the dependency")
	}
}

func TestVerifyCausalDelivery(t *testing.T) {
	tr := NewTrace()
	m1 := msg(lbl("x", 1))
	m2 := msg(lbl("y", 1), m1.Label)
	good := tr.Observer("good", nil)
	good(m1)
	good(m2)
	if err := tr.VerifyCausalDelivery("good"); err != nil {
		t.Errorf("valid sequence rejected: %v", err)
	}
	bad := tr.Observer("bad", nil)
	bad(m2)
	bad(m1)
	if err := tr.VerifyCausalDelivery("bad"); err == nil {
		t.Error("causal violation not detected")
	}
	if err := tr.VerifyAll(); err == nil {
		t.Error("VerifyAll missed the bad member")
	}
}

func TestSameDeliverySet(t *testing.T) {
	tr := NewTrace()
	m1, m2 := msg(lbl("x", 1)), msg(lbl("y", 1))
	a := tr.Observer("a", nil)
	b := tr.Observer("b", nil)
	a(m1)
	a(m2)
	b(m2)
	b(m1) // different order, same set
	n, err := tr.SameDeliverySet()
	if err != nil || n != 2 {
		t.Fatalf("SameDeliverySet = %d, %v", n, err)
	}
	c := tr.Observer("c", nil)
	c(m1) // missing m2
	if _, err := tr.SameDeliverySet(); err == nil {
		t.Error("set divergence not detected")
	}
}

func TestSameDeliverySetEmpty(t *testing.T) {
	n, err := NewTrace().SameDeliverySet()
	if n != 0 || err != nil {
		t.Errorf("empty trace: %d, %v", n, err)
	}
}

func TestAuditStablePoints(t *testing.T) {
	pt := func(c uint64, closer message.Label, digest string) core.StablePoint {
		return core.StablePoint{Cycle: c, Closer: closer, Digest: digest}
	}
	l1, l2 := lbl("n", 1), lbl("n", 2)

	t.Run("consistent", func(t *testing.T) {
		r := AuditStablePoints(map[string][]core.StablePoint{
			"a": {pt(1, l1, "d1"), pt(2, l2, "d2")},
			"b": {pt(1, l1, "d1"), pt(2, l2, "d2")},
		})
		if !r.Consistent() || r.Points != 2 {
			t.Errorf("report = %+v", r)
		}
	})

	t.Run("digest divergence", func(t *testing.T) {
		r := AuditStablePoints(map[string][]core.StablePoint{
			"a": {pt(1, l1, "d1")},
			"b": {pt(1, l1, "DIFFERENT")},
		})
		if r.Consistent() {
			t.Fatal("divergence missed")
		}
		if !strings.Contains(r.Divergence, "digest") {
			t.Errorf("divergence message = %q", r.Divergence)
		}
	})

	t.Run("closer divergence", func(t *testing.T) {
		r := AuditStablePoints(map[string][]core.StablePoint{
			"a": {pt(1, l1, "d1")},
			"b": {pt(1, l2, "d1")},
		})
		if r.Consistent() {
			t.Fatal("closer divergence missed")
		}
	})

	t.Run("prefix comparison", func(t *testing.T) {
		r := AuditStablePoints(map[string][]core.StablePoint{
			"a": {pt(1, l1, "d1"), pt(2, l2, "d2")},
			"b": {pt(1, l1, "d1")}, // shorter history: only prefix audited
		})
		if !r.Consistent() || r.Points != 1 {
			t.Errorf("report = %+v", r)
		}
	})

	t.Run("empty", func(t *testing.T) {
		if r := AuditStablePoints(nil); !r.Consistent() || r.Points != 0 {
			t.Errorf("report = %+v", r)
		}
	})
}

func TestBoundedTraceRingAndDropped(t *testing.T) {
	tr := NewBoundedTrace(3)
	obs := tr.Observer("a", nil)
	for s := uint64(1); s <= 5; s++ {
		obs(msg(lbl("x", s)))
	}
	seq := tr.Sequence("a")
	if len(seq) != 3 {
		t.Fatalf("retained %d messages, want 3", len(seq))
	}
	for i, want := range []uint64{3, 4, 5} {
		if seq[i].Label.Seq != want {
			t.Errorf("seq[%d] = %v, want x/%d (oldest-first)", i, seq[i].Label, want)
		}
	}
	if d := tr.Dropped("a"); d != 2 {
		t.Errorf("Dropped = %d, want 2", d)
	}
	if d := tr.Dropped("nobody"); d != 0 {
		t.Errorf("Dropped(unknown) = %d, want 0", d)
	}
	// Unbounded traces never drop.
	ub := NewTrace()
	o := ub.Observer("a", nil)
	for s := uint64(1); s <= 5; s++ {
		o(msg(lbl("x", s)))
	}
	if d := ub.Dropped("a"); d != 0 {
		t.Errorf("unbounded Dropped = %d, want 0", d)
	}
	if got := len(ub.Sequence("a")); got != 5 {
		t.Errorf("unbounded retained %d, want 5", got)
	}
}

func TestBoundedTraceMinimumCapacity(t *testing.T) {
	tr := NewBoundedTrace(0)
	obs := tr.Observer("a", nil)
	obs(msg(lbl("x", 1)))
	obs(msg(lbl("x", 2)))
	if seq := tr.Sequence("a"); len(seq) != 1 || seq[0].Label.Seq != 2 {
		t.Errorf("sequence = %v, want just x/2", seq)
	}
	if d := tr.Dropped("a"); d != 1 {
		t.Errorf("Dropped = %d, want 1", d)
	}
}

func TestBoundedTraceBestEffortVerify(t *testing.T) {
	m1 := msg(lbl("x", 1))
	m2 := msg(lbl("y", 1), m1.Label)
	m3 := msg(lbl("z", 1), m2.Label)

	// The dependency of the window's oldest message was overwritten; the
	// verifier must assume it was delivered in the truncated prefix.
	tr := NewBoundedTrace(2)
	obs := tr.Observer("a", nil)
	obs(m1)
	obs(m2)
	obs(m3)
	if err := tr.VerifyCausalDelivery("a"); err != nil {
		t.Errorf("truncated-but-valid sequence rejected: %v", err)
	}

	// An inversion visible inside the retained window is still reported,
	// even with drops recorded.
	inv := NewBoundedTrace(2)
	o := inv.Observer("a", nil)
	o(msg(lbl("f", 1))) // filler, overwritten below
	o(m2)
	o(m1) // m2's dependency delivered after m2, both retained
	if inv.Dropped("a") != 1 {
		t.Fatalf("Dropped = %d, want 1", inv.Dropped("a"))
	}
	if err := inv.VerifyCausalDelivery("a"); err == nil {
		t.Error("in-window inversion not detected on truncated trace")
	}

	// Without drops a bounded trace verifies strictly: a missing
	// dependency is a violation, not a presumed-truncated one.
	strict := NewBoundedTrace(8)
	s := strict.Observer("a", nil)
	s(m2)
	if err := strict.VerifyCausalDelivery("a"); err == nil {
		t.Error("missing dependency accepted with no drops recorded")
	}
}
