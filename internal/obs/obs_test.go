package obs

import (
	"strings"
	"testing"

	"causalshare/internal/core"
	"causalshare/internal/message"
)

func lbl(o string, s uint64) message.Label { return message.Label{Origin: o, Seq: s} }

func msg(l message.Label, deps ...message.Label) message.Message {
	return message.Message{Label: l, Deps: message.After(deps...), Kind: message.KindCommutative, Op: "op"}
}

func TestTraceRecordsAndForwards(t *testing.T) {
	tr := NewTrace()
	forwarded := 0
	obs := tr.Observer("a", func(message.Message) { forwarded++ })
	obs(msg(lbl("x", 1)))
	obs(msg(lbl("x", 2)))
	if forwarded != 2 {
		t.Errorf("forwarded = %d", forwarded)
	}
	if got := tr.Sequence("a"); len(got) != 2 {
		t.Errorf("sequence = %v", got)
	}
	// nil next must not panic.
	tr.Observer("b", nil)(msg(lbl("y", 1)))
	if m := tr.Members(); len(m) != 2 || m[0] != "a" || m[1] != "b" {
		t.Errorf("Members = %v", m)
	}
}

func TestExtractGraph(t *testing.T) {
	tr := NewTrace()
	a := tr.Observer("a", nil)
	b := tr.Observer("b", nil)
	m1 := msg(lbl("x", 1))
	m2 := msg(lbl("y", 1), m1.Label)
	// Both members deliver both messages (different order is fine).
	a(m1)
	a(m2)
	b(m1)
	b(m2)
	g, err := tr.ExtractGraph()
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Fatalf("graph has %d nodes", g.Len())
	}
	if !g.HappensBefore(m1.Label, m2.Label) {
		t.Error("extracted graph lost the dependency")
	}
}

func TestVerifyCausalDelivery(t *testing.T) {
	tr := NewTrace()
	m1 := msg(lbl("x", 1))
	m2 := msg(lbl("y", 1), m1.Label)
	good := tr.Observer("good", nil)
	good(m1)
	good(m2)
	if err := tr.VerifyCausalDelivery("good"); err != nil {
		t.Errorf("valid sequence rejected: %v", err)
	}
	bad := tr.Observer("bad", nil)
	bad(m2)
	bad(m1)
	if err := tr.VerifyCausalDelivery("bad"); err == nil {
		t.Error("causal violation not detected")
	}
	if err := tr.VerifyAll(); err == nil {
		t.Error("VerifyAll missed the bad member")
	}
}

func TestSameDeliverySet(t *testing.T) {
	tr := NewTrace()
	m1, m2 := msg(lbl("x", 1)), msg(lbl("y", 1))
	a := tr.Observer("a", nil)
	b := tr.Observer("b", nil)
	a(m1)
	a(m2)
	b(m2)
	b(m1) // different order, same set
	n, err := tr.SameDeliverySet()
	if err != nil || n != 2 {
		t.Fatalf("SameDeliverySet = %d, %v", n, err)
	}
	c := tr.Observer("c", nil)
	c(m1) // missing m2
	if _, err := tr.SameDeliverySet(); err == nil {
		t.Error("set divergence not detected")
	}
}

func TestSameDeliverySetEmpty(t *testing.T) {
	n, err := NewTrace().SameDeliverySet()
	if n != 0 || err != nil {
		t.Errorf("empty trace: %d, %v", n, err)
	}
}

func TestAuditStablePoints(t *testing.T) {
	pt := func(c uint64, closer message.Label, digest string) core.StablePoint {
		return core.StablePoint{Cycle: c, Closer: closer, Digest: digest}
	}
	l1, l2 := lbl("n", 1), lbl("n", 2)

	t.Run("consistent", func(t *testing.T) {
		r := AuditStablePoints(map[string][]core.StablePoint{
			"a": {pt(1, l1, "d1"), pt(2, l2, "d2")},
			"b": {pt(1, l1, "d1"), pt(2, l2, "d2")},
		})
		if !r.Consistent() || r.Points != 2 {
			t.Errorf("report = %+v", r)
		}
	})

	t.Run("digest divergence", func(t *testing.T) {
		r := AuditStablePoints(map[string][]core.StablePoint{
			"a": {pt(1, l1, "d1")},
			"b": {pt(1, l1, "DIFFERENT")},
		})
		if r.Consistent() {
			t.Fatal("divergence missed")
		}
		if !strings.Contains(r.Divergence, "digest") {
			t.Errorf("divergence message = %q", r.Divergence)
		}
	})

	t.Run("closer divergence", func(t *testing.T) {
		r := AuditStablePoints(map[string][]core.StablePoint{
			"a": {pt(1, l1, "d1")},
			"b": {pt(1, l2, "d1")},
		})
		if r.Consistent() {
			t.Fatal("closer divergence missed")
		}
	})

	t.Run("prefix comparison", func(t *testing.T) {
		r := AuditStablePoints(map[string][]core.StablePoint{
			"a": {pt(1, l1, "d1"), pt(2, l2, "d2")},
			"b": {pt(1, l1, "d1")}, // shorter history: only prefix audited
		})
		if !r.Consistent() || r.Points != 1 {
			t.Errorf("report = %+v", r)
		}
	})

	t.Run("empty", func(t *testing.T) {
		if r := AuditStablePoints(nil); !r.Consistent() || r.Points != 0 {
			t.Errorf("report = %+v", r)
		}
	})
}
