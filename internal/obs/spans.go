package obs

import (
	"causalshare/internal/graph"
	"causalshare/internal/message"
	"causalshare/internal/trace"
)

// GraphFromSpans rebuilds the declared dependency graph from a trace
// collector's span records — the union of every retained activity. Spans
// carry the OccursAfter predicates verbatim, so the result is exact (the
// same graph ExtractGraph yields from a full delivery log) regardless of
// which members' deliveries were observed. Edges pointing at labels the
// collector never recorded (evicted, unsampled, or cross-activity lineage)
// are cut, mirroring TraceView.Graph.
//
// The second return is false when the collector is nil or retains no
// spans; callers then fall back to log inference (DependencyGraph does
// this automatically).
func GraphFromSpans(c *trace.Collector) (*graph.Graph, bool) {
	views := c.Traces()
	g := graph.New()
	present := make(map[message.Label]bool)
	for _, v := range views {
		for _, s := range v.Spans {
			present[s.Label] = true
		}
	}
	if len(present) == 0 {
		return nil, false
	}
	for _, v := range views {
		for _, s := range v.Spans {
			g.AddNode(s.Label)
			for _, d := range s.Deps {
				if present[d] {
					_ = g.AddEdges(s.Label, []message.Label{d})
				}
			}
		}
	}
	return g, true
}

// DependencyGraph recovers the execution's dependency graph from the best
// evidence available: span records when a collector traced the run, else
// inference from the delivery logs alone (the §3.2 observation mode for
// engines whose messages carry no explicit relations). The span path is
// exact; the inference path is conservative and may add accidental edges
// that held in this execution by chance.
func DependencyGraph(t *Trace, c *trace.Collector) (*graph.Graph, error) {
	if g, ok := GraphFromSpans(c); ok {
		return g, nil
	}
	return t.InferFromObservation()
}
