package obs

import (
	"testing"

	"causalshare/internal/message"
)

func TestInferFromObservationEmpty(t *testing.T) {
	g, err := NewTrace().InferFromObservation()
	if err != nil || g.Len() != 0 {
		t.Fatalf("empty trace: %d nodes, %v", g.Len(), err)
	}
}

func TestInferRecoversStableOrder(t *testing.T) {
	// m1 before m2 at every member -> inferred dependency. m2/m3 swap
	// between members -> inferred concurrent.
	tr := NewTrace()
	m1, m2, m3 := msg(lbl("a", 1)), msg(lbl("b", 1)), msg(lbl("c", 1))
	a := tr.Observer("a", nil)
	b := tr.Observer("b", nil)
	a(m1)
	a(m2)
	a(m3)
	b(m1)
	b(m3)
	b(m2)
	g, err := tr.InferFromObservation()
	if err != nil {
		t.Fatal(err)
	}
	if !g.HappensBefore(m1.Label, m2.Label) || !g.HappensBefore(m1.Label, m3.Label) {
		t.Error("stable precedence not inferred")
	}
	if !g.Concurrent(m2.Label, m3.Label) {
		t.Error("observed interleaving divergence not classified concurrent")
	}
}

func TestInferSupersetOfDeclaredOrder(t *testing.T) {
	// Causal delivery guarantees declared deps hold at every member, so
	// the inferred graph must contain every declared relation (it may add
	// accidental ones).
	tr := NewTrace()
	m1 := msg(lbl("a", 1))
	m2 := msg(lbl("b", 1), m1.Label)
	m3 := msg(lbl("c", 1), m2.Label)
	orders := [][]message.Message{
		{m1, m2, m3},
		{m1, m2, m3},
		{m1, m2, m3},
	}
	for i, seq := range orders {
		obs := tr.Observer(string(rune('x'+i)), nil)
		for _, m := range seq {
			obs(m)
		}
	}
	g, err := tr.InferFromObservation()
	if err != nil {
		t.Fatal(err)
	}
	declared, err := tr.ExtractGraph()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range declared.Nodes() {
		for _, p := range declared.Predecessors(n) {
			if !g.HappensBefore(p, n) {
				t.Errorf("declared %v -> %v missing from inferred graph", p, n)
			}
		}
	}
}

func TestInferRestrictsToCommonMessages(t *testing.T) {
	tr := NewTrace()
	m1, m2 := msg(lbl("a", 1)), msg(lbl("b", 1))
	a := tr.Observer("a", nil)
	b := tr.Observer("b", nil)
	a(m1)
	a(m2)
	b(m1) // b never saw m2 (still in flight)
	g, err := tr.InferFromObservation()
	if err != nil {
		t.Fatal(err)
	}
	if g.Has(m2.Label) {
		t.Error("message absent at a member included in inference")
	}
	if !g.Has(m1.Label) {
		t.Error("common message missing")
	}
}

func TestInferSingleMemberIsTotalOrder(t *testing.T) {
	// With one observer everything it saw is "stable", i.e. a chain.
	tr := NewTrace()
	a := tr.Observer("a", nil)
	msgs := []message.Message{msg(lbl("a", 1)), msg(lbl("b", 1)), msg(lbl("c", 1))}
	for _, m := range msgs {
		a(m)
	}
	g, err := tr.InferFromObservation()
	if err != nil {
		t.Fatal(err)
	}
	if got := g.CountLinearizations(0); got != 1 {
		t.Errorf("single-member inference admits %d orders, want 1", got)
	}
}
