// Package obs provides execution observation: trace capture of delivered
// messages, extraction of the stable-form dependency graph from an
// observed execution (§3.2 of the paper), verification that a delivery
// sequence respected its causal constraints, and auditing of cross-
// replica agreement at stable points.
package obs

import (
	"fmt"
	"sort"
	"sync"

	"causalshare/internal/core"
	"causalshare/internal/graph"
	"causalshare/internal/message"
)

// Delivery is one observed delivery event.
type Delivery struct {
	Member string
	Msg    message.Message
	Index  int // position in the member's delivery sequence
}

// Trace records deliveries across members. It is safe for concurrent use;
// wrap each member's DeliverFunc with Observer.
//
// A trace from NewTrace retains every delivery — unbounded memory, which
// short verification runs want (no evidence is lost). Long-running
// observed executions should use NewBoundedTrace, which keeps only the
// most recent deliveries per member (ring semantics) and makes the
// verifiers best-effort over the retained window.
type Trace struct {
	mu   sync.Mutex
	cap  int // per-member retained deliveries; 0 means unbounded
	byMb map[string]*memberLog
}

// memberLog is one member's delivery record: append-only when the trace is
// unbounded, a fixed ring that overwrites the oldest entry otherwise.
type memberLog struct {
	buf  []message.Message
	next uint64 // total deliveries ever observed
}

// NewTrace returns an empty unbounded trace: every delivery is retained.
func NewTrace() *Trace {
	return &Trace{byMb: make(map[string]*memberLog)}
}

// NewBoundedTrace returns a trace retaining at most perMember deliveries
// for each member (minimum 1); older entries are overwritten in ring
// fashion and counted by Dropped. Verification over a truncated trace is
// best-effort: see VerifyCausalDelivery.
func NewBoundedTrace(perMember int) *Trace {
	if perMember < 1 {
		perMember = 1
	}
	return &Trace{cap: perMember, byMb: make(map[string]*memberLog)}
}

// Observer returns a DeliverFunc wrapper that records member's deliveries
// before forwarding to next (next may be nil).
func (t *Trace) Observer(member string, next func(message.Message)) func(message.Message) {
	return func(m message.Message) {
		t.mu.Lock()
		l := t.byMb[member]
		if l == nil {
			l = &memberLog{}
			t.byMb[member] = l
		}
		if t.cap > 0 && len(l.buf) == t.cap {
			l.buf[l.next%uint64(t.cap)] = m
		} else {
			l.buf = append(l.buf, m)
		}
		l.next++
		t.mu.Unlock()
		if next != nil {
			next(m)
		}
	}
}

// Dropped returns how many of member's deliveries have been overwritten
// (always 0 for unbounded traces).
func (t *Trace) Dropped(member string) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	l := t.byMb[member]
	if l == nil || t.cap == 0 || l.next <= uint64(t.cap) {
		return 0
	}
	return l.next - uint64(t.cap)
}

// Members returns the observed member ids in sorted order.
func (t *Trace) Members() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.byMb))
	for m := range t.byMb {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Sequence returns a copy of member's retained delivery sequence, oldest
// first.
func (t *Trace) Sequence(member string) []message.Message {
	t.mu.Lock()
	defer t.mu.Unlock()
	l := t.byMb[member]
	if l == nil {
		return nil
	}
	if t.cap == 0 || l.next <= uint64(t.cap) {
		return append([]message.Message(nil), l.buf...)
	}
	start := l.next % uint64(t.cap)
	out := make([]message.Message, 0, len(l.buf))
	out = append(out, l.buf[start:]...)
	return append(out, l.buf[:start]...)
}

// ExtractGraph rebuilds the stable-form message dependency graph from the
// union of observed deliveries — the §3.2 observation that the graph is
// "extractable by observing execution behaviour in terms of messages
// exchanged". Because OccursAfter predicates travel with the messages,
// the extracted graph is identical no matter which member's trace it is
// built from.
func (t *Trace) ExtractGraph() (*graph.Graph, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	g := graph.New()
	seen := make(map[message.Label]bool)
	for _, l := range t.byMb {
		for _, m := range l.buf {
			if seen[m.Label] {
				continue
			}
			seen[m.Label] = true
			if err := g.AddMessage(m); err != nil {
				return nil, fmt.Errorf("obs: extract: %w", err)
			}
		}
	}
	return g, nil
}

// VerifyCausalDelivery checks that member's observed sequence satisfies
// every OccursAfter predicate: each dependency was delivered earlier in
// the same sequence. It returns the first violation found.
//
// On a bounded trace that has dropped entries for member, the check is
// best-effort: a dependency absent from the retained window is assumed to
// have been delivered in the truncated prefix. An inversion visible
// inside the window (dependency retained but at a later index) is still
// reported.
func (t *Trace) VerifyCausalDelivery(member string) error {
	seq := t.Sequence(member)
	truncated := t.Dropped(member) > 0
	pos := make(map[message.Label]int, len(seq))
	for i, m := range seq {
		if _, dup := pos[m.Label]; !dup {
			pos[m.Label] = i
		}
	}
	for i, m := range seq {
		for _, d := range m.Deps.Labels() {
			j, retained := pos[d]
			if retained && j < i {
				continue
			}
			if !retained && truncated {
				continue // plausibly delivered in the dropped prefix
			}
			return fmt.Errorf("obs: member %s delivered %v at %d before its dependency %v",
				member, m.Label, i, d)
		}
	}
	return nil
}

// VerifyAll runs VerifyCausalDelivery for every member.
func (t *Trace) VerifyAll() error {
	for _, m := range t.Members() {
		if err := t.VerifyCausalDelivery(m); err != nil {
			return err
		}
	}
	return nil
}

// SameDeliverySet checks every member delivered the same set of labels
// (ignoring order) and returns the members' common size, or an error
// naming the first divergence.
func (t *Trace) SameDeliverySet() (int, error) {
	members := t.Members()
	if len(members) == 0 {
		return 0, nil
	}
	ref := make(map[message.Label]bool)
	for _, m := range t.Sequence(members[0]) {
		ref[m.Label] = true
	}
	for _, mb := range members[1:] {
		seq := t.Sequence(mb)
		if len(seq) != len(ref) {
			return 0, fmt.Errorf("obs: member %s delivered %d messages, member %s delivered %d",
				mb, len(seq), members[0], len(ref))
		}
		for _, m := range seq {
			if !ref[m.Label] {
				return 0, fmt.Errorf("obs: member %s delivered %v unseen at %s", mb, m.Label, members[0])
			}
		}
	}
	return len(ref), nil
}

// AuditReport is the outcome of comparing replicas' stable-point
// histories.
type AuditReport struct {
	// Points is the number of stable points every replica agrees on.
	Points int
	// Divergence describes the first disagreement ("" when consistent).
	Divergence string
}

// Consistent reports whether no divergence was found.
func (r AuditReport) Consistent() bool { return r.Divergence == "" }

// AuditStablePoints compares stable-point histories across replicas: at
// every index up to the shortest history, the closing label and state
// digest must match. This is the paper's agreement guarantee made
// checkable.
func AuditStablePoints(histories map[string][]core.StablePoint) AuditReport {
	members := make([]string, 0, len(histories))
	for m := range histories {
		members = append(members, m)
	}
	sort.Strings(members)
	if len(members) == 0 {
		return AuditReport{}
	}
	shortest := len(histories[members[0]])
	for _, m := range members[1:] {
		if len(histories[m]) < shortest {
			shortest = len(histories[m])
		}
	}
	ref := histories[members[0]]
	for i := 0; i < shortest; i++ {
		for _, m := range members[1:] {
			got := histories[m][i]
			if got.Closer != ref[i].Closer {
				return AuditReport{
					Points: i,
					Divergence: fmt.Sprintf("stable point %d: %s closed by %v, %s closed by %v",
						i, members[0], ref[i].Closer, m, got.Closer),
				}
			}
			if got.Digest != ref[i].Digest {
				return AuditReport{
					Points: i,
					Divergence: fmt.Sprintf("stable point %d (%v): %s digest %s, %s digest %s",
						i, ref[i].Closer, members[0], ref[i].Digest, m, got.Digest),
				}
			}
		}
	}
	return AuditReport{Points: shortest}
}

// AuditTotalOrder checks totally ordered delivery logs for position
// consistency: no two members may disagree about which entry occupies any
// global sequence position both of them delivered. offsets gives the
// global position of each member's first log entry (1 for a member that
// delivered from the start; a member that rejoined from a snapshot starts
// at the snapshot's delivery frontier and contributes only its suffix).
// A nil offsets treats every log as starting at position 1. The report's
// Points field counts the distinct global positions corroborated by at
// least two members.
func AuditTotalOrder(orders map[string][]string, offsets map[string]uint64) AuditReport {
	members := make([]string, 0, len(orders))
	for m := range orders {
		members = append(members, m)
	}
	sort.Strings(members)
	// at[p] is the first (member, entry) observed for global position p.
	type claim struct {
		member string
		entry  string
	}
	at := make(map[uint64]claim)
	corroborated := make(map[uint64]bool)
	for _, m := range members {
		start := uint64(1)
		if offsets != nil && offsets[m] > 0 {
			start = offsets[m]
		}
		for i, entry := range orders[m] {
			p := start + uint64(i)
			prev, seen := at[p]
			if !seen {
				at[p] = claim{member: m, entry: entry}
				continue
			}
			if prev.entry != entry {
				return AuditReport{
					Points: len(corroborated),
					Divergence: fmt.Sprintf("position %d: %s delivered %q, %s delivered %q",
						p, prev.member, prev.entry, m, entry),
				}
			}
			corroborated[p] = true
		}
	}
	return AuditReport{Points: len(corroborated)}
}
