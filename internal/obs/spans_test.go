package obs

import (
	"testing"

	"causalshare/internal/message"
	"causalshare/internal/trace"
)

// TestSpanAndInferencePathsAgreeOnFigure2 drives the Figure 2 computation
// (mk -> ||{mi, mj} -> sync) through both evidence paths — span records on
// a trace collector and plain delivery logs — and requires the recovered
// graphs to classify every label pair identically: same happens-before
// relation, same concurrency. The members' logs interleave the concurrent
// middle differently, so inference has the evidence to separate real
// dependencies from accidental order.
func TestSpanAndInferencePathsAgreeOnFigure2(t *testing.T) {
	mk := message.Message{Label: lbl("ak", 1), Kind: message.KindNonCommutative, Op: "set"}
	mi := message.Message{Label: lbl("ai", 1), Deps: message.After(mk.Label), Kind: message.KindCommutative, Op: "inc"}
	mj := message.Message{Label: lbl("aj", 1), Deps: message.After(mk.Label), Kind: message.KindCommutative, Op: "dec"}
	sync := message.Message{Label: lbl("aj", 2), Deps: message.After(mi.Label, mj.Label), Kind: message.KindRead, Op: "rd"}

	tr := NewTrace()
	col := trace.NewCollector(trace.Config{})
	// Each message gets its span context at its origin, as Broadcast does
	// on the live stack; the context then travels with the message.
	for _, m := range []*message.Message{&mk, &mi, &mj, &sync} {
		m.Span = col.Tracer(m.Label.Origin).Broadcast(*m)
	}

	// Valid causal delivery orders; ai and aj disagree on the middle pair.
	orders := map[string][]message.Message{
		"ai": {mk, mi, mj, sync},
		"aj": {mk, mj, mi, sync},
		"ak": {mk, mi, mj, sync},
	}
	for member, seq := range orders {
		rec := tr.Observer(member, nil)
		spans := col.Tracer(member)
		for _, m := range seq {
			rec(m)
			spans.Enqueue(m)
			spans.Deliver(m)
		}
	}

	fromSpans, ok := GraphFromSpans(col)
	if !ok {
		t.Fatal("collector retained no spans")
	}
	fromLogs, err := tr.InferFromObservation()
	if err != nil {
		t.Fatal(err)
	}
	labels := []message.Label{mk.Label, mi.Label, mj.Label, sync.Label}
	for _, a := range labels {
		for _, b := range labels {
			if a == b {
				continue
			}
			if sp, inf := fromSpans.HappensBefore(a, b), fromLogs.HappensBefore(a, b); sp != inf {
				t.Errorf("HappensBefore(%v, %v): spans=%v inference=%v", a, b, sp, inf)
			}
			if sp, inf := fromSpans.Concurrent(a, b), fromLogs.Concurrent(a, b); sp != inf {
				t.Errorf("Concurrent(%v, %v): spans=%v inference=%v", a, b, sp, inf)
			}
		}
	}
	// Spot-check the figure's relations on the span path.
	if !fromSpans.HappensBefore(mk.Label, sync.Label) {
		t.Error("transitive mk -> sync lost on the span path")
	}
	if !fromSpans.Concurrent(mi.Label, mj.Label) {
		t.Error("concurrent middle not classified concurrent on the span path")
	}
	if col.ViolationCount() != 0 {
		t.Errorf("audit flagged a valid causal delivery: %v", col.Violations())
	}
}

// TestDependencyGraphFallsBackToInference pins the selection rule: with no
// collector (or an empty one) DependencyGraph answers from the logs.
func TestDependencyGraphFallsBackToInference(t *testing.T) {
	m1 := msg(lbl("a", 1))
	m2 := msg(lbl("b", 1), m1.Label)
	tr := NewTrace()
	for _, member := range []string{"a", "b"} {
		rec := tr.Observer(member, nil)
		rec(m1)
		rec(m2)
	}
	for _, col := range []*trace.Collector{nil, trace.NewCollector(trace.Config{})} {
		g, err := DependencyGraph(tr, col)
		if err != nil {
			t.Fatal(err)
		}
		if !g.HappensBefore(m1.Label, m2.Label) {
			t.Error("fallback inference lost the stable precedence")
		}
	}
}
