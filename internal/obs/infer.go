package obs

import (
	"causalshare/internal/graph"
	"causalshare/internal/message"
)

// InferFromObservation approximates the application's causal order from
// delivery sequences alone, without reading OccursAfter predicates — the
// §3.2 observation mode for engines (ISIS CBCAST, x-Kernel Psync) whose
// messages carry no explicit relations. A pair m ≺ m' is inferred when m
// precedes m' in *every* member's sequence: orderings that hold at all
// members across the observed execution are the stable part; pairs that
// interleave differently somewhere are demonstrably concurrent.
//
// The result is conservative in one direction only: every truly
// *declared* dependency appears (causal delivery enforces it at every
// member), but accidental agreements — pairs that happened to arrive in
// the same order everywhere this run — are indistinguishable from real
// dependencies without more executions. The paper calls this "the
// potential linearization of partial orders on messages by the physical
// communication system"; intersecting more execution instances shrinks
// the inferred graph toward the true stable form.
//
// Only messages delivered at every member participate. The inferred graph
// contains an edge per covering pair (transitive reduction is not
// applied; use graph queries, which are closure-based, rather than edge
// counts).
func (t *Trace) InferFromObservation() (*graph.Graph, error) {
	members := t.Members()
	g := graph.New()
	if len(members) == 0 {
		return g, nil
	}
	// Collect positions per member; restrict to the common label set.
	positions := make([]map[message.Label]int, len(members))
	for i, mb := range members {
		seq := t.Sequence(mb)
		pos := make(map[message.Label]int, len(seq))
		for idx, m := range seq {
			pos[m.Label] = idx
		}
		positions[i] = pos
	}
	common := make([]message.Label, 0, len(positions[0]))
	for l := range positions[0] {
		everywhere := true
		for _, pos := range positions[1:] {
			if _, ok := pos[l]; !ok {
				everywhere = false
				break
			}
		}
		if everywhere {
			common = append(common, l)
		}
	}
	for _, l := range common {
		g.AddNode(l)
	}
	// m -> m' iff m precedes m' at every member. Edges always point from
	// earlier to later in member 0's order, so no cycle can arise.
	for _, a := range common {
		for _, b := range common {
			if a == b || positions[0][a] >= positions[0][b] {
				continue
			}
			before := true
			for _, pos := range positions[1:] {
				if pos[a] >= pos[b] {
					before = false
					break
				}
			}
			if before {
				if err := g.AddEdges(b, []message.Label{a}); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}
