package chaos

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"causalshare/internal/causal"
	"causalshare/internal/consistency"
	"causalshare/internal/flightrec"
	"causalshare/internal/group"
	"causalshare/internal/message"
	"causalshare/internal/reliable"
	"causalshare/internal/telemetry"
	"causalshare/internal/total"
	"causalshare/internal/trace"
	"causalshare/internal/transport"
	"causalshare/internal/wal"
)

// Net is the transport surface the harness drives; both ChanNet and TCPNet
// satisfy it, so every scenario runs unchanged over in-process channels and
// real loopback sockets.
type Net interface {
	Attach(id string) (transport.Conn, error)
	Isolate(id string)
	Restore(id string)
	PartitionOneWay(from, to string, block bool)
}

// Options parameterizes one chaos run.
type Options struct {
	Members  []string
	Net      Net
	Schedule Schedule
	// Engine selects the causal broadcast engine every member runs:
	// "osend" (default) or "pccast". PCCast requires Reliable non-nil —
	// its correctness rests on reliable FIFO links, and chaos schedules
	// partition and isolate members, which only the reliability sublayer
	// repairs.
	Engine string
	// SendsPerMember is each member's data-message quota; a member paused
	// by a crash resumes the remainder of its quota after rejoining.
	SendsPerMember int
	// Step is the driver's pump granularity (send pacing, heartbeat and
	// failure-detector cadence). Defaults to 2ms.
	Step time.Duration
	// FailTimeout arms sequencer failover; zero reproduces the pre-failover
	// fixed-sequencer behavior, where a leader crash stalls the run.
	FailTimeout time.Duration
	// Patience drives the causal layer's anti-entropy (fetch + advert)
	// loop; rejoin catch-up needs it positive.
	Patience time.Duration
	// Timeout bounds the run; hitting it reports Converged == false.
	Timeout time.Duration
	// Telemetry, when non-nil, is shared by every layer instance, so the
	// run's counters (elections, re-proposals, failover latency) aggregate.
	Telemetry *telemetry.Registry
	// TelemetryFor, when non-nil, supplies a registry per member and
	// overrides Telemetry: each member's stack (reliability, causal,
	// total) registers on its own registry, exactly as a real deployment
	// serves one telemetry endpoint per process. This is what the
	// observability-plane assertions and causaltop scrape against. Called
	// once per incarnation; returning the same registry for a member
	// across rejoins is fine (func gauges are last-wins).
	TelemetryFor func(member string) *telemetry.Registry
	// Trace, when non-nil, receives every member's epoch/election events.
	Trace *telemetry.Ring
	// Collector, when non-nil, attaches a causal trace tracer to every
	// member incarnation (including rejoined ones) and runs the online
	// consistency audit over the whole run; Result.Violations reports what
	// it caught.
	Collector *trace.Collector
	// Recorder, when non-nil, tees the Collector's lifecycle stream into
	// an offline consistency history: after the run, the whole recorded
	// history is checked and Result.Consistency carries the CC/CCv/CM
	// verdicts. Requires Collector non-nil — the recorder rides its trace
	// hooks, so it sees exactly the events the online auditor saw.
	Recorder *consistency.Recorder
	// FlightDir, when non-empty, arms a black-box flight recorder on every
	// member incarnation (one fixed-capacity box per member, reused across
	// rejoins) and names the directory where post-mortem dumps land. Dumps
	// are written only when the run ends badly — auditor violations, a
	// failed offline CC/CCv/CM verdict, or non-convergence — or always
	// when FlightAlways is set; Result.FlightRecords lists what was
	// written. The boxes are fed from the trace Collector (send, recv,
	// deliver, dep-resolution, epochs, violations) plus direct engine
	// hooks (holdback, fetches, retransmits, elections), so arming them
	// without a Collector still records the engine-side story.
	FlightDir string
	// FlightAlways forces a dump even from a clean run (smoke tests and
	// the figure pipeline's provenance trail).
	FlightAlways bool
	// Durable, when non-nil, arms a write-ahead log on every member: each
	// incarnation journals its deliveries, holdback payloads, sequence
	// assignments, epochs, and commit-frontier advances. A crash seals the
	// log at the crash instant (unsynced tail lost, per the sync policy),
	// and a RecoverDisk action restarts the member from its own log,
	// falling back to peer anti-entropy only for the suffix the log
	// missed. Snapshot rejoins (Recover actions) wipe the member's log and
	// checkpoint the donated state, so a later disk restart has a durable
	// baseline.
	Durable *Durability
	// Reliable, when non-nil, is the template config for a per-link
	// reliability sublayer wrapped around every member's connection
	// (including rejoined incarnations): lost and reordered frames are
	// repaired below the causal layer, shed peers feed the sequencer's
	// failure detector, and reliability RESETs trigger targeted causal
	// resyncs. Seeds are derived per member; OnSuspect/OnResync are
	// harness-owned and must be left nil.
	Reliable *reliable.Config
}

// Durability parameterizes the per-member write-ahead logs of a durable
// chaos run.
type Durability struct {
	// FSFor returns the filesystem a member's log lives on. One FS per
	// member, so crashing a member tears only its own unsynced tail. Nil
	// defaults to a fresh fault-free MemFS per member (seeded by rank).
	FSFor func(member string) wal.FS
	// Dir is the log directory on the member's filesystem ("/wal" when
	// empty). Each member has its own FS, so the path may repeat.
	Dir string
	// Policy and Interval select the sync policy (see wal.Options).
	Policy   wal.Policy
	Interval time.Duration
}

// MemberResult is one member's view at the end of the run.
type MemberResult struct {
	// Order is the member's delivered data messages, in its total order.
	// For a rejoined member this is the post-rejoin suffix only. For a
	// crashed member it stops at the freeze instant: the frozen engines
	// keep running (stale-frame pressure on survivors) but a dead process
	// observably delivers nothing.
	Order []string
	// Digest is an order-sensitive hash of Order.
	Digest uint64
	// Epoch is the member's final leadership epoch.
	Epoch uint64
	// ResumedAt is the global sequence number of Order's first position
	// (1 unless the member rejoined from a snapshot).
	ResumedAt uint64
	// Alive reports whether the member was up when the run ended.
	Alive bool
	// Rejoined reports whether the member crashed and rejoined at least once.
	Rejoined bool
	// Sent is how many of the member's quota it actually broadcast.
	Sent int
	// Frontier is the member's final causal delivered-watermark map (nil
	// for members down at the end); FrontierDigest is its order-free hash,
	// the cheap cross-member equality check the restart figures use.
	Frontier       map[string]uint64
	FrontierDigest uint64
	// DiskRecoveries counts RecoverDisk restarts this member served from
	// its own log; DiskTruncated reports whether any of those replays had
	// to cut a torn or corrupt tail.
	DiskRecoveries int
	DiskTruncated  bool
}

// Result is the outcome of one chaos run.
type Result struct {
	Members map[string]*MemberResult
	// Converged reports that, after the last scheduled action and the last
	// send, every live member reached the same delivery frontier with an
	// empty holdback and held there.
	Converged bool
	// Frontier is the agreed next-deliver sequence at convergence.
	Frontier uint64
	// Recovery holds one measured duration per leader crash: from the
	// crash action until every surviving member moved past the crashed
	// leader's epoch. It spans the full detection window plus the election
	// round, which neither the schedule nor the failover-latency histogram
	// (suspicion to completion only) captures on its own.
	Recovery []time.Duration
	Elapsed  time.Duration
	// Violations is the online auditor's total (0 without a Collector);
	// ViolationLog holds its bounded snapshots for failure messages.
	Violations   uint64
	ViolationLog []trace.Violation
	// Consistency is the offline whole-history verdict report — CC, CCv,
	// and CM over the run's recorded reads and writes (nil without a
	// Recorder).
	Consistency *consistency.Report
	// FlightRecords lists the per-member black-box dump files written
	// under Options.FlightDir (empty when the recorder was disarmed or
	// the run ended cleanly without FlightAlways).
	FlightRecords []string
	// HistoryFile is the recorded-history JSON written alongside the
	// flight dumps when a Recorder was armed ("" otherwise), the input
	// cccheck replays.
	HistoryFile string
}

// orderLog collects one incarnation's delivered data messages.
type orderLog struct {
	mu      sync.Mutex
	entries []string
	frozen  bool
}

func (l *orderLog) deliver(m message.Message) {
	l.mu.Lock()
	if !l.frozen {
		l.entries = append(l.entries, string(m.Body))
	}
	l.mu.Unlock()
}

// freeze stops recording: a crashed member's engines keep running inside
// the isolation boundary, but anything they "deliver" after the freeze
// died with the process and must not count as observed output.
func (l *orderLog) freeze() {
	l.mu.Lock()
	l.frozen = true
	l.mu.Unlock()
}

func (l *orderLog) snapshot() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.entries...)
}

// Digest hashes a delivered order, position-sensitively.
func Digest(order []string) uint64 {
	h := fnv.New64a()
	for _, e := range order {
		_, _ = h.Write([]byte(e))
		_, _ = h.Write([]byte{0})
	}
	return h.Sum64()
}

type node struct {
	id        string
	seq       *total.Sequencer
	eng       causal.Engine
	log       *orderLog
	alive     bool
	rejoined  bool
	resumedAt uint64
	sent      int
	// wfs/wlog are the member's durable log when Options.Durable is set;
	// the FS persists across incarnations (it is the member's "disk"),
	// the WAL handle is per incarnation.
	wfs           wal.FS
	wlog          *wal.WAL
	diskRecovered int
	diskTruncated bool
}

type cluster struct {
	opts  Options
	grp   *group.Group
	nodes []*node
	byID  map[string]*node
	// flight holds the per-member black boxes when Options.FlightDir is
	// set; Set.For hands a rejoined incarnation its crashed predecessor's
	// box back, so one file per member covers the whole run.
	flight *flightrec.Set
	// injectSeq numbers the phantom labels fabricated by Reorder actions
	// so repeated injections never collide.
	injectSeq uint64
}

// Run executes one chaos schedule to completion (convergence or timeout)
// and reports every member's final view. The driver is single-threaded:
// sends, heartbeats, detector ticks, and fault actions are all applied
// from one loop at Step granularity, so a schedule perturbs a run at
// well-defined points even though the stack underneath is concurrent.
func Run(opts Options) (*Result, error) {
	if len(opts.Members) < 3 {
		return nil, fmt.Errorf("chaos: need at least 3 members, got %d", len(opts.Members))
	}
	switch opts.Engine {
	case "", "osend":
	case "pccast":
		if opts.Reliable == nil {
			return nil, fmt.Errorf("chaos: engine pccast requires a reliability sublayer (Options.Reliable)")
		}
	default:
		return nil, fmt.Errorf("chaos: unknown engine %q", opts.Engine)
	}
	if opts.Recorder != nil {
		if opts.Collector == nil {
			return nil, fmt.Errorf("chaos: Options.Recorder requires a trace Collector to ride on")
		}
		opts.Collector.SetObserver(opts.Recorder)
	}
	for _, a := range opts.Schedule.Actions {
		if a.Reorder != "" && opts.Collector == nil {
			return nil, fmt.Errorf("chaos: %v requires a trace Collector (the injection rides its hooks)", a)
		}
	}
	if opts.Step <= 0 {
		opts.Step = 2 * time.Millisecond
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 15 * time.Second
	}
	c := &cluster{
		opts: opts,
		grp:  group.MustNew("chaos", opts.Members),
		byID: make(map[string]*node),
	}
	if opts.FlightDir != "" {
		c.flight = flightrec.NewSet(flightrec.Config{Telemetry: opts.Telemetry})
		opts.Collector.SetFlight(c.flight)
	}
	for _, id := range opts.Members {
		n := &node{id: id, alive: true, resumedAt: 1}
		if err := c.openJournal(n); err != nil {
			c.stopAll()
			return nil, err
		}
		if err := c.start(n, nil, nil, 0); err != nil {
			c.stopAll()
			return nil, err
		}
		c.nodes = append(c.nodes, n)
		c.byID[id] = n
	}
	defer c.stopAll()

	actions := append([]Action(nil), opts.Schedule.Actions...)
	begin := time.Now()
	res := &Result{Members: make(map[string]*MemberResult)}
	stableFor := 0
	// Recovery clock: armed when a schedule action kills the member
	// leading the highest epoch any node has reached, stopped when every
	// survivor has moved past that epoch.
	var crashedAt time.Time
	var crashedEpoch uint64
	for {
		elapsed := time.Since(begin)
		if elapsed > opts.Timeout {
			break
		}
		for len(actions) > 0 && actions[0].At <= elapsed {
			a := actions[0]
			actions = actions[1:]
			switch {
			case a.Crash != "":
				if epoch := c.maxEpoch(); crashedAt.IsZero() && c.leaderOf(epoch) == a.Crash {
					crashedAt = time.Now()
					crashedEpoch = epoch
				}
				c.crash(c.byID[a.Crash])
			case a.Recover != "":
				if err := c.rejoin(c.byID[a.Recover]); err != nil {
					return nil, fmt.Errorf("chaos: %v: %w", a, err)
				}
			case a.RecoverDisk != "":
				if err := c.rejoinFromDisk(c.byID[a.RecoverDisk]); err != nil {
					return nil, fmt.Errorf("chaos: %v: %w", a, err)
				}
			case a.Reorder != "":
				c.injectReorder(a.Reorder)
			case a.PartFrom != "":
				c.opts.Net.PartitionOneWay(a.PartFrom, a.PartTo, a.Block)
			}
		}
		if !crashedAt.IsZero() && c.allPastEpoch(crashedEpoch) {
			res.Recovery = append(res.Recovery, time.Since(crashedAt))
			crashedAt = time.Time{}
		}
		now := time.Now()
		for _, n := range c.nodes {
			if !n.alive {
				continue
			}
			if n.sent < opts.SendsPerMember {
				body := fmt.Sprintf("%s/%d", n.id, n.sent)
				if _, err := n.seq.ASend("chaos.op", message.KindNonCommutative, []byte(body), message.After()); err == nil {
					n.sent++
				}
			}
			_ = n.seq.Heartbeat()
			n.seq.Tick(now)
		}
		if len(actions) == 0 && c.allSent() {
			if f, ok := c.settled(); ok {
				stableFor++
				if stableFor >= 3 {
					res.Converged = true
					res.Frontier = f
					break
				}
			} else {
				stableFor = 0
			}
		}
		time.Sleep(opts.Step)
	}
	res.Elapsed = time.Since(begin)
	res.Violations = opts.Collector.ViolationCount()
	res.ViolationLog = opts.Collector.Violations()
	if opts.Recorder != nil {
		rep, err := consistency.Check(opts.Recorder.History())
		if err != nil {
			return nil, fmt.Errorf("chaos: offline consistency check: %w", err)
		}
		res.Consistency = rep
	}
	if err := c.persistFlight(res); err != nil {
		return nil, err
	}
	for _, n := range c.nodes {
		order := n.log.snapshot()
		mr := &MemberResult{
			Order:          order,
			Digest:         Digest(order),
			Epoch:          n.seq.Epoch(),
			ResumedAt:      n.resumedAt,
			Alive:          n.alive,
			Rejoined:       n.rejoined,
			Sent:           n.sent,
			DiskRecoveries: n.diskRecovered,
			DiskTruncated:  n.diskTruncated,
		}
		if n.alive {
			mr.Frontier = n.eng.Frontier()
			mr.FrontierDigest = wal.FrontierDigest(mr.Frontier)
		}
		res.Members[n.id] = mr
	}
	return res, nil
}

// persistFlight dumps every member's black box (plus the recorded
// history, when a Recorder rode along) under Options.FlightDir when the
// run ended badly — or unconditionally under FlightAlways. A clean run
// without FlightAlways writes nothing: the boxes are post-mortem
// evidence, not routine output.
func (c *cluster) persistFlight(res *Result) error {
	if c.flight == nil {
		return nil
	}
	bad := res.Violations > 0 || !res.Converged ||
		(res.Consistency != nil && !res.Consistency.AllHold())
	if !bad && !c.opts.FlightAlways {
		return nil
	}
	paths, err := c.flight.DumpAll(c.opts.FlightDir)
	if err != nil {
		return fmt.Errorf("chaos: flight dump: %w", err)
	}
	res.FlightRecords = paths
	// The WAL segments are forensic evidence of the same grade as the
	// flight boxes: dump each member's (in-memory) disk alongside them so
	// CI uploads both and a post-mortem can replay the logs offline.
	if c.opts.Durable != nil {
		for _, n := range c.nodes {
			mfs, ok := n.wfs.(*wal.MemFS)
			if !ok {
				continue
			}
			wp, err := mfs.Export(filepath.Join(c.opts.FlightDir, "wal", n.id))
			if err != nil {
				return fmt.Errorf("chaos: wal export for %s: %w", n.id, err)
			}
			res.FlightRecords = append(res.FlightRecords, wp...)
		}
	}
	if c.opts.Recorder == nil {
		return nil
	}
	hp := filepath.Join(c.opts.FlightDir, "history.json")
	f, err := os.Create(hp)
	if err != nil {
		return fmt.Errorf("chaos: flight history: %w", err)
	}
	if err := c.opts.Recorder.History().WriteJSON(f); err != nil {
		_ = f.Close()
		return fmt.Errorf("chaos: flight history: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("chaos: flight history: %w", err)
	}
	res.HistoryFile = hp
	return nil
}

// injectReorder fabricates a causal-order inversion in the observation
// plane at the named member: two dep-linked phantom messages are reported
// delivered dependency-LAST there, while a healthy witness member reports
// them dependency-first. The real engines never carry the phantoms (the
// run's convergence is untouched); the trace auditor flags a causal-order
// violation at the victim, the offline history records the inversion for
// the CC/CCv/CM checker, and — via the collector's flight tee — every
// record lands in the members' black boxes, giving the forensics pipeline
// a deterministic crime scene.
func (c *cluster) injectReorder(member string) {
	victim := c.byID[member]
	if victim == nil || !victim.alive {
		return
	}
	var witness *node
	for _, n := range c.nodes {
		if n.alive && n.id != member {
			witness = n
			break
		}
	}
	c.injectSeq += 2
	origin := member + "!inject"
	now := time.Now().UnixNano()
	dep := message.Message{
		Label:  message.Label{Origin: origin, Seq: c.injectSeq - 1},
		Kind:   message.KindNonCommutative,
		Op:     "chaos.inject",
		Body:   []byte("phantom-dep"),
		SentAt: now,
	}
	tail := message.Message{
		Label:  message.Label{Origin: origin, Seq: c.injectSeq},
		Deps:   message.After(dep.Label),
		Kind:   message.KindNonCommutative,
		Op:     "chaos.inject",
		Body:   []byte("phantom-tail"),
		SentAt: now,
	}
	// The phantoms carry their span contexts explicitly — enqueue and
	// deliver hooks ignore spanless messages (unsampled activities).
	vt := c.opts.Collector.Tracer(member)
	dep.Span = vt.Broadcast(dep)
	tail.Span = vt.Broadcast(tail)
	// The witness observes the legal order first, so the two members'
	// flight timelines genuinely disagree about the same labels.
	if witness != nil {
		wt := c.opts.Collector.Tracer(witness.id)
		wt.Enqueue(dep)
		wt.Deliver(dep)
		wt.Enqueue(tail)
		wt.Deliver(tail)
	}
	// The victim delivers the dependent message before its declared
	// dependency — the inversion the auditor exists to catch.
	vt.Enqueue(tail)
	vt.Deliver(tail)
	vt.Enqueue(dep)
	vt.Deliver(dep)
}

// hooks defers the reliability sublayer's callbacks to engines that are
// only constructed after the connection is wrapped. The sublayer's ticker
// cannot fire a callback before its timeouts elapse, but the atomics make
// the construction window race-free by proof rather than by timing.
type hooks struct {
	seq atomic.Pointer[total.Sequencer]
	eng atomic.Value // causal.Engine
}

// engine returns the installed causal engine, or nil during construction.
func (h *hooks) engine() causal.Engine {
	if v := h.eng.Load(); v != nil {
		return v.(causal.Engine)
	}
	return nil
}

// start brings up a (possibly resumed) incarnation of n.
func (c *cluster) start(n *node, snap *total.SyncSnapshot, wm map[string]uint64, lastLabel uint64) error {
	conn, err := c.opts.Net.Attach(n.id)
	if err != nil {
		return err
	}
	reg := c.opts.Telemetry
	if c.opts.TelemetryFor != nil {
		reg = c.opts.TelemetryFor(n.id)
	}
	// box is nil when flight recording is disarmed; every Recorder method
	// is nil-safe, so the layers embed their hook calls unconditionally.
	// A rejoined incarnation gets the same box back (Set.For interns by
	// member), so one timeline spans the crash.
	var box *flightrec.Recorder
	if c.flight != nil {
		box = c.flight.For(n.id)
	}
	var h *hooks
	if c.opts.Reliable != nil {
		// Each member (and each incarnation) gets its own sublayer with a
		// derived jitter seed; shed verdicts accelerate the sequencer's
		// failure detector and RESETs trigger targeted causal resyncs.
		rcfg := *c.opts.Reliable
		rcfg.Seed = rcfg.Seed*int64(len(c.opts.Members)+1) + int64(c.grp.Rank(n.id)) + 1
		rcfg.Telemetry = reg
		rcfg.Trace = c.opts.Trace
		rcfg.Flight = box
		h = &hooks{}
		rcfg.OnSuspect = func(peer string) {
			if s := h.seq.Load(); s != nil {
				s.Suspect(peer)
			}
			if e := h.engine(); e != nil {
				// Drop the peer from the stability quorum too: a dead
				// member's frozen watermark must not pin retained history.
				// Under PCCast this also tears the peer's link, arming the
				// buffered re-establishment round-trip for its return.
				e.MarkDown(peer, true)
			}
		}
		rcfg.OnResync = func(peer string) {
			if e := h.engine(); e != nil {
				e.MarkDown(peer, false)
				_ = e.SyncWith(peer)
			}
		}
		conn = reliable.Wrap(conn, c.grp.Others(n.id), rcfg)
	}
	n.log = &orderLog{}
	spans := c.opts.Collector.Tracer(n.id)
	seqr, err := total.NewSequencer(total.Config{
		Self:        n.id,
		Group:       c.grp,
		Deliver:     n.log.deliver,
		FailTimeout: c.opts.FailTimeout,
		Telemetry:   reg,
		Trace:       c.opts.Trace,
		Tracer:      spans,
		Flight:      box,
		Journal:     n.wlog,
	})
	if err != nil {
		_ = conn.Close()
		return err
	}
	var eng causal.Engine
	switch c.opts.Engine {
	case "pccast":
		eng, err = causal.NewPCCast(causal.PCCastConfig{
			Self:      n.id,
			Group:     c.grp,
			Conn:      conn,
			Deliver:   seqr.Ingest,
			Patience:  c.opts.Patience,
			Telemetry: reg,
			Trace:     c.opts.Trace,
			Tracer:    spans,
			Flight:    box,
			Journal:   n.wlog,
		})
	default: // "", "osend" — validated in Run
		eng, err = causal.NewOSend(causal.OSendConfig{
			Self:      n.id,
			Group:     c.grp,
			Conn:      conn,
			Deliver:   seqr.Ingest,
			Patience:  c.opts.Patience,
			Telemetry: reg,
			Trace:     c.opts.Trace,
			Tracer:    spans,
			Flight:    box,
			Journal:   n.wlog,
		})
	}
	if err != nil {
		_ = seqr.Close()
		_ = conn.Close()
		return err
	}
	seqr.Bind(eng)
	if snap != nil {
		eng.SeedFrontier(wm)
		seqr.Resume(*snap, lastLabel)
		// Pull the retained tail above the seeded watermark immediately;
		// the periodic adverts would get there too, just later.
		_ = eng.RequestSync()
	}
	if h != nil {
		h.seq.Store(seqr)
		h.eng.Store(eng)
	}
	n.seq = seqr
	n.eng = eng
	return nil
}

// crash freezes a member: partition it away and stop pumping it. Its
// engines stay allocated (a frozen process still holds memory) but no
// frame crosses the network boundary in either direction and its clocks
// stop, which is indistinguishable from a crash to every peer.
func (c *cluster) crash(n *node) {
	if n == nil || !n.alive {
		return
	}
	c.opts.Net.Isolate(n.id)
	n.log.freeze()
	n.alive = false
	// Process death seals the log NOW: nothing buffered flushes, and the
	// member's "disk" drops whatever was never fsynced — the crash point,
	// not the later restart, decides how much tail is lost.
	n.wlog.Kill()
	if cr, ok := n.wfs.(interface{ Crash() }); ok {
		cr.Crash()
	}
}

// rejoin tears the frozen incarnation down and starts a fresh one from a
// live peer's snapshot. The donor's causal watermarks seed the new
// engine's frontier (watermarks first, sequencer snapshot second — see
// total.SyncState), and they must be the DONOR'S OWN, not a merge across
// peers: the seeded frontier declares "this history is already reflected
// in my snapshot", which is only true of labels the donor itself
// delivered. A merged maximum over-claims — it includes labels a peer
// self-delivered but never managed to disseminate (e.g. its outbound
// window was stalled toward the crashed member), and the rejoiner would
// skip them as old news while holding a snapshot that never contained
// them; if it later leads, nothing ever sequences them. The donor is the
// live peer that has delivered furthest along the rejoiner's own label
// chain, so the chain resumes above every sequence any survivor holds and
// new traffic cannot collide with retained pre-crash labels.
func (c *cluster) rejoin(n *node) error {
	if n == nil || n.alive {
		return nil
	}
	_ = n.seq.Close()
	_ = n.eng.Close() // closes the old conn, detaching it from the net
	c.opts.Net.Restore(n.id)

	chain := total.SeqOrigin(n.id)
	var donor *node
	var wm map[string]uint64
	for _, m := range c.nodes {
		if !m.alive {
			continue
		}
		fw := m.eng.Frontier()
		if donor == nil || fw[chain] > wm[chain] {
			donor, wm = m, fw
		}
	}
	if donor == nil {
		return fmt.Errorf("no live peer to rejoin %s from", n.id)
	}
	snap := donor.seq.SyncState()
	// A snapshot rejoin abandons the member's own history: the donated
	// state supersedes whatever the log remembers, so the log is wiped
	// and the new baseline checkpointed before any new traffic journals
	// on top. A later RecoverDisk then resumes from this incarnation.
	if c.opts.Durable != nil {
		if err := c.wipeJournal(n); err != nil {
			return err
		}
		if err := c.openJournal(n); err != nil {
			return err
		}
		ck := wal.Recovered{
			Frontier:    wm,
			Epoch:       snap.Epoch,
			NextDeliver: snap.NextDeliver,
			Assigns:     make([]wal.Assign, 0, len(snap.Assigns)),
			Pending:     snap.Data,
		}
		for _, a := range snap.Assigns {
			ck.Assigns = append(ck.Assigns, wal.Assign{Seq: a.Seq, Epoch: a.Epoch, Label: a.Label})
		}
		if err := n.wlog.WriteCheckpoint(ck); err != nil {
			return fmt.Errorf("checkpoint %s after snapshot rejoin: %w", n.id, err)
		}
	}
	if err := c.start(n, &snap, wm, wm[total.SeqOrigin(n.id)]); err != nil {
		return err
	}
	n.alive = true
	n.rejoined = true
	n.resumedAt = snap.NextDeliver
	return nil
}

// walOpts assembles the member's log options; the telemetry registry is
// resolved the same way start resolves it, so wal_* metrics land next to
// the member's other instruments.
func (c *cluster) walOpts(n *node) wal.Options {
	d := c.opts.Durable
	dir := d.Dir
	if dir == "" {
		dir = "/wal"
	}
	reg := c.opts.Telemetry
	if c.opts.TelemetryFor != nil {
		reg = c.opts.TelemetryFor(n.id)
	}
	return wal.Options{
		Dir:       dir,
		FS:        n.wfs,
		Policy:    d.Policy,
		Interval:  d.Interval,
		Telemetry: reg,
	}
}

// openJournal opens a fresh log handle for n's next incarnation (no-op
// without durability). The member's FS is created on first use and kept
// across incarnations — it is the member's disk.
func (c *cluster) openJournal(n *node) error {
	d := c.opts.Durable
	if d == nil {
		return nil
	}
	if n.wfs == nil {
		if d.FSFor != nil {
			n.wfs = d.FSFor(n.id)
		} else {
			n.wfs = wal.NewMemFS(int64(c.grp.Rank(n.id))+1, wal.Faults{})
		}
	}
	w, err := wal.Open(c.walOpts(n))
	if err != nil {
		return fmt.Errorf("chaos: open journal for %s: %w", n.id, err)
	}
	n.wlog = w
	return nil
}

// wipeJournal removes every segment of n's log; the FS itself survives.
func (c *cluster) wipeJournal(n *node) error {
	opts := c.walOpts(n)
	names, err := n.wfs.List(opts.Dir)
	if err != nil {
		return fmt.Errorf("chaos: wipe journal for %s: %w", n.id, err)
	}
	for _, name := range names {
		if err := n.wfs.Remove(opts.Dir + "/" + name); err != nil {
			return fmt.Errorf("chaos: wipe journal for %s: %w", n.id, err)
		}
	}
	return nil
}

// rejoinFromDisk restarts a crashed member as its own prior incarnation:
// the frontier, label chain, epoch, retained assignments, and holdback
// are replayed from the member's own log (truncating any torn tail), and
// only the suffix the log missed is fetched from peers through the normal
// anti-entropy path. Contrast rejoin, which takes everything from a
// donor. One guard matters: with an async or group-commit sync policy the
// log can run BEHIND the group — the member may have broadcast (and
// peers delivered) labels on its own chain that its crash threw away — so
// the resumed chain starts above the maximum of the disk frontier and
// every live peer's view of it, or the member would mint duplicate
// labels.
func (c *cluster) rejoinFromDisk(n *node) error {
	if n == nil || n.alive {
		return nil
	}
	if c.opts.Durable == nil || n.wfs == nil {
		return fmt.Errorf("restart-from-disk for %s without durability armed", n.id)
	}
	_ = n.seq.Close()
	_ = n.eng.Close() // closes the old conn, detaching it from the net
	c.opts.Net.Restore(n.id)

	rec, w, err := wal.Recover(c.walOpts(n))
	if err != nil {
		return fmt.Errorf("recover %s from disk: %w", n.id, err)
	}
	n.wlog = w
	n.diskRecovered++
	if rec.Truncated {
		n.diskTruncated = true
	}
	// The disk decides where the member resumes; the live group decides
	// three things the disk cannot know. First, the epoch: resuming at a
	// stale epoch whose leader the member happens to be would have it
	// assign sequence numbers on a branch the group already abandoned, so
	// it adopts the highest epoch any live peer reached (its own ORDERs
	// under older epochs merge in and lose to re-proposals, exactly as if
	// it had observed the election). Second, the label chain: under an
	// async or group-commit sync policy peers may have delivered labels
	// from this member's own chain that its crash threw away, so the
	// resumed chain must start above every live peer's view of it, or the
	// member would mint duplicates. Third — the converse — the crash
	// FORFEITS the own-chain tail the disk is ahead by: labels the member
	// journaled but no peer ever received cannot be re-offered (the
	// engine's retained buffer died with the process), so peers would
	// wedge forever holding back the chain at the gap. Those messages
	// were never totally ordered — their only trace in the replayed state
	// is the watermark and the holdback — so capping the watermark and
	// dropping the forfeited holdback entries reconstructs exactly the
	// member's state as of the last label a peer saw: an unreplicated
	// write lost to a crash, never a silent divergence.
	chain := total.SeqOrigin(n.id)
	epoch := rec.Epoch
	var peersView uint64
	anyPeer := false
	for _, m := range c.nodes {
		if !m.alive {
			continue
		}
		anyPeer = true
		if fw := m.eng.Frontier()[chain]; fw > peersView {
			peersView = fw
		}
		if e := m.seq.Epoch(); e > epoch {
			epoch = e
		}
	}
	lastLabel := rec.Frontier[chain]
	if anyPeer {
		if rec.Frontier[chain] > peersView {
			wmCap := make(map[string]uint64, len(rec.Frontier))
			for o, s := range rec.Frontier {
				wmCap[o] = s
			}
			wmCap[chain] = peersView
			rec.Frontier = wmCap
			kept := rec.Pending[:0]
			for _, m := range rec.Pending {
				if m.Label.Origin == chain && m.Label.Seq > peersView {
					continue
				}
				kept = append(kept, m)
			}
			rec.Pending = kept
		}
		lastLabel = peersView
	}
	snap := total.SyncSnapshot{
		Epoch:       epoch,
		NextDeliver: rec.NextDeliver,
		Assigns:     make([]total.SyncAssign, 0, len(rec.Assigns)),
		Data:        rec.Pending,
	}
	for _, a := range rec.Assigns {
		snap.Assigns = append(snap.Assigns, total.SyncAssign{Seq: a.Seq, Epoch: a.Epoch, Label: a.Label})
	}
	wm := rec.Frontier
	// Suffix graft: the causal layer's anti-entropy can only refetch what
	// peers still retain, and history that went stable at every LIVE
	// member while this one was down has been garbage-collected — the
	// restarted member can never replay that stretch of any chain. So the
	// donor's snapshot is grafted on top of the durable prefix
	// unconditionally: the member keeps everything its own log replayed
	// (it re-journals nothing), takes the donated assignments and
	// holdback for the stretch its log missed, and seeds its causal
	// frontier at the pointwise max of the disk's and the donor's
	// watermarks. When the log is current — per-record sync, short
	// outage — the graft degenerates to a no-op; the lazier the policy
	// and the longer the outage, the more of the restart it serves. The
	// NextDeliver guard cannot stand in for this: two sequencers at the
	// same commit frontier can still be thousands of (pruned) control
	// messages apart on the causal chains, and a watermark left below the
	// donor's retained floor wedges the member forever.
	if donor := c.diskDonor(n, chain); donor != nil {
		dsnap := donor.seq.SyncState()
		dwm := donor.eng.Frontier()
		if dsnap.NextDeliver > snap.NextDeliver {
			snap.NextDeliver = dsnap.NextDeliver
		}
		// Donated assignments first: on an epoch tie for the same seq,
		// Resume keeps the first it merged, and the donor's view is the
		// group's.
		snap.Assigns = append(append([]total.SyncAssign(nil), dsnap.Assigns...), snap.Assigns...)
		// Replayed holdback the donor causally delivered but no longer
		// holds was released — committed in total order — while this
		// member was down; its Order/Commit records are exactly what the
		// torn tail lost. Keeping it would strand it in the holdback
		// forever (release never revisits committed seqs).
		donorHolds := make(map[message.Label]bool, len(dsnap.Data))
		for _, m := range dsnap.Data {
			donorHolds[m.Label] = true
		}
		kept := snap.Data[:0]
		for _, m := range snap.Data {
			if dwm[m.Label.Origin] >= m.Label.Seq && !donorHolds[m.Label] {
				continue
			}
			kept = append(kept, m)
		}
		snap.Data = append(append([]message.Message(nil), dsnap.Data...), kept...)
		// The donor's own watermarks are consistent with its snapshot
		// (see rejoin); the disk frontier is consistent with the replayed
		// prefix. Their pointwise max is consistent with the merged
		// state: every label it covers is either reflected in the donated
		// sequencer state or journaled in the recovered holdback.
		wm = make(map[string]uint64, len(dwm)+len(rec.Frontier))
		for o, s := range dwm {
			wm[o] = s
		}
		for o, s := range rec.Frontier {
			if s > wm[o] {
				wm[o] = s
			}
		}
	}
	if err := c.start(n, &snap, wm, lastLabel); err != nil {
		return err
	}
	n.alive = true
	n.rejoined = true
	n.resumedAt = snap.NextDeliver
	return nil
}

// diskDonor picks the live peer that has delivered furthest along n's own
// label chain (nil when nobody is up) — the same donor rule rejoin uses.
func (c *cluster) diskDonor(n *node, chain string) *node {
	var donor *node
	var best uint64
	for _, m := range c.nodes {
		if !m.alive {
			continue
		}
		if fw := m.eng.Frontier()[chain]; donor == nil || fw > best {
			donor, best = m, fw
		}
	}
	return donor
}

// leaderOf maps an epoch to the member leading it (the protocol's
// deterministic succession order).
func (c *cluster) leaderOf(epoch uint64) string {
	return c.opts.Members[int(epoch%uint64(len(c.opts.Members)))]
}

// maxEpoch returns the highest epoch any live node has reached.
func (c *cluster) maxEpoch() uint64 {
	var max uint64
	for _, n := range c.nodes {
		if n.alive {
			if e := n.seq.Epoch(); e > max {
				max = e
			}
		}
	}
	return max
}

// allPastEpoch reports whether every live node has adopted an epoch above
// the given one — i.e. the succession after that epoch's leader completed
// everywhere that can observe it.
func (c *cluster) allPastEpoch(epoch uint64) bool {
	for _, n := range c.nodes {
		if n.alive && n.seq.Epoch() <= epoch {
			return false
		}
	}
	return true
}

func (c *cluster) allSent() bool {
	for _, n := range c.nodes {
		if n.alive && n.sent < c.opts.SendsPerMember {
			return false
		}
	}
	return true
}

// settled reports whether every live member sits at the same delivery
// frontier with an empty sequencer holdback. On a lossless transport with
// anti-entropy armed, a frontier that agrees everywhere after the last
// send is a fixpoint: no data message can still be on its way to a
// sequence number.
func (c *cluster) settled() (uint64, bool) {
	var frontier uint64
	first := true
	for _, n := range c.nodes {
		if !n.alive {
			continue
		}
		snap := n.seq.SyncState()
		if n.seq.Pending() != 0 {
			return 0, false
		}
		if first {
			frontier = snap.NextDeliver
			first = false
		} else if snap.NextDeliver != frontier {
			return 0, false
		}
	}
	return frontier, !first
}

func (c *cluster) stopAll() {
	for _, n := range c.nodes {
		if n.seq != nil {
			_ = n.seq.Close()
		}
		if n.eng != nil {
			_ = n.eng.Close()
		}
		_ = n.wlog.Close()
	}
}
