package chaos

import (
	"testing"
	"time"

	"causalshare/internal/reliable"
	"causalshare/internal/transport"
)

// lossNet builds a transport of the given kind with faults armed.
func lossNet(t *testing.T, kind string, fm transport.FaultModel) netCloser {
	t.Helper()
	switch kind {
	case "channet":
		return transport.NewChanNet(fm)
	case "tcpnet":
		return transport.NewTCPNetWithConfig(transport.TCPConfig{Faults: fm})
	default:
		t.Fatalf("unknown net kind %q", kind)
		return nil
	}
}

// lossOptions arms the reliability sublayer over a lossy run. Shed
// patience is generous relative to gap-repair latency so pure loss never
// sheds a live member; the shed path is exercised by the crash scenario.
func lossOptions(net Net, members []string, sched Schedule) Options {
	opts := chaosOptions(net, members, sched)
	opts.Timeout = 60 * time.Second
	// Pure-loss runs keep the fixed sequencer: failover is pointless
	// without crashes, and heartbeat delivery legitimately stalls for a
	// few repair round-trips under heavy loss.
	opts.FailTimeout = 0
	opts.Reliable = &reliable.Config{
		Window:       128,
		AckEvery:     8,
		Tick:         2 * time.Millisecond,
		StallTimeout: 300 * time.Millisecond,
		ShedAfter:    500 * time.Millisecond,
		Seed:         1,
	}
	return opts
}

func runLoss(t *testing.T, opts Options) *Result {
	t.Helper()
	res, err := Run(opts)
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if !res.Converged {
		t.Fatalf("run did not converge in %v (frontier spread persists)", opts.Timeout)
	}
	assertSurvivorAgreement(t, res)
	auditAll(t, res)
	return res
}

// TestLossSustainedConverges is the headline robustness scenario: 30%%
// independent frame loss on every link, no crashes — every member must
// still converge to the identical total order with zero causal-order
// violations, purely on the strength of ack/NACK repair.
func TestLossSustainedConverges(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	for _, kind := range netKinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			for _, seed := range []int64{7, 21, 42} {
				net := lossNet(t, kind, transport.FaultModel{DropProb: 0.3, Seed: seed})
				res := runLoss(t, lossOptions(net, members, Schedule{Seed: seed}))
				_ = net.Close()
				for id, m := range res.Members {
					if m.Sent != 25 {
						t.Fatalf("seed %d: %s sent %d/25", seed, id, m.Sent)
					}
				}
			}
		})
	}
}

// TestLossBurstConverges drives the Gilbert–Elliott burst model: long
// correlated loss episodes (90%% drop while the chain is in its bad
// state) on top of background loss. Bursts are where NACK backoff and the
// sender RTO earn their keep — a burst can eat every copy of a frame AND
// the first several repair attempts.
func TestLossBurstConverges(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	fm := transport.FaultModel{
		DropProb:  0.05,
		BurstProb: 0.02,
		BurstHeal: 0.2,
		BurstDrop: 0.9,
	}
	for _, kind := range netKinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			for _, seed := range []int64{7, 21, 42} {
				m := fm
				m.Seed = seed
				net := lossNet(t, kind, m)
				res := runLoss(t, lossOptions(net, members, Schedule{Seed: seed}))
				_ = net.Close()
				if res.Violations != 0 {
					t.Fatalf("seed %d: %d violations", seed, res.Violations)
				}
			}
		})
	}
}

// TestLossOneWayPartitions layers scheduled asymmetric link failures over
// background loss: directions go dark one at a time and heal, and the
// sublayer must repair each victim's backlog (or resync it) without ever
// reordering anyone.
func TestLossOneWayPartitions(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	for _, kind := range netKinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			for _, seed := range []int64{7, 21} {
				sched := OneWayLossSchedule(seed, members, 800*time.Millisecond, 3)
				net := lossNet(t, kind, transport.FaultModel{DropProb: 0.1, Seed: seed})
				res := runLoss(t, lossOptions(net, members, sched))
				_ = net.Close()
				if res.Violations != 0 {
					t.Fatalf("seed %d: %d violations", seed, res.Violations)
				}
			}
		})
	}
}

// TestLossLeaderCrashFailover combines loss with a leader crash: the
// reliability sublayer sheds the dead leader (no acks) and feeds the
// sequencer's failure detector, so failover completes and the survivors
// converge even while 10%% of frames are vanishing.
func TestLossLeaderCrashFailover(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	for _, kind := range netKinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			net := lossNet(t, kind, transport.FaultModel{DropProb: 0.1, Seed: 7})
			defer net.Close()
			opts := lossOptions(net, members, KillLeader(members, 60*time.Millisecond))
			// Failover armed: generous relative to loss-induced heartbeat
			// stalls, accelerated by the sublayer's shed verdicts.
			opts.FailTimeout = 250 * time.Millisecond
			res := runLoss(t, opts)
			dead := res.Members[members[0]]
			if dead.Alive {
				t.Fatal("crashed leader reported alive")
			}
			for id, m := range res.Members {
				if id != members[0] && m.Epoch == 0 {
					t.Fatalf("%s never moved past epoch 0", id)
				}
			}
		})
	}
}
