//go:build !race

package chaos

// raceScale is 1 in ordinary builds; see racescale_race.go.
const raceScale = 1
