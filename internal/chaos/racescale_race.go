//go:build race

package chaos

// raceScale stretches wall-clock failure-detection knobs when the race
// detector is armed. Instrumentation slows the driver pump several-fold,
// so heartbeat intervals stretch with it while suspicion timeouts would
// not — live members would be falsely suspected and elections would
// complete without their acks. Scaling the timeouts restores the
// designed heartbeat-to-detection ratio.
const raceScale = 4
