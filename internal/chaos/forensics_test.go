package chaos

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"causalshare/internal/flightrec"
	"causalshare/internal/transport"
)

// TestFlightRecorderDumpsOnInjectedViolation is the forensics pipeline's
// end-to-end check: a deterministic run with an injected causal-order
// inversion must auto-dump every member's black box, and merging those
// dumps must reconstruct a cross-member timeline that names the violating
// message and the members whose delivery orders disagree.
func TestFlightRecorderDumpsOnInjectedViolation(t *testing.T) {
	members := []string{"a", "b", "c"}
	net := transport.NewChanNet(transport.FaultModel{})
	defer func() { _ = net.Close() }()
	dir := t.TempDir()
	sched := Schedule{Actions: []Action{{At: 30 * time.Millisecond, Reorder: "b"}}}
	opts := chaosOptions(net, members, sched)
	opts.FlightDir = dir
	res, err := Run(opts)
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	// The phantoms live only in the observation plane: the real engines
	// still converge, yet the auditor must have caught the inversion.
	if !res.Converged {
		t.Fatal("run did not converge (injection must not disturb the engines)")
	}
	if res.Violations == 0 {
		t.Fatal("injected reorder produced no auditor violation")
	}
	if res.Consistency == nil || res.Consistency.AllHold() {
		t.Fatalf("offline checker passed a history with an injected inversion: %v", res.Consistency)
	}
	if len(res.FlightRecords) != len(members) {
		t.Fatalf("FlightRecords = %v, want one dump per member", res.FlightRecords)
	}
	if res.HistoryFile == "" {
		t.Fatal("no recorded history written alongside the dumps")
	}
	if _, err := os.Stat(res.HistoryFile); err != nil {
		t.Fatalf("history file: %v", err)
	}

	// Post-mortem: decode the boxes and merge them into one timeline.
	dumps := make([]*flightrec.Dump, 0, len(res.FlightRecords))
	for _, p := range res.FlightRecords {
		d, err := flightrec.ReadFile(p)
		if err != nil {
			t.Fatalf("ReadFile(%s): %v", p, err)
		}
		if d.Member != strings.TrimSuffix(filepath.Base(p), ".fr") {
			t.Fatalf("dump %s claims member %q", p, d.Member)
		}
		dumps = append(dumps, d)
	}
	tl := flightrec.Merge(dumps)
	if len(tl.Violations) == 0 {
		t.Fatal("merged timeline carries no violation entry")
	}
	ve := tl.Entries[tl.Violations[0]]
	if ve.Member != "b" {
		t.Fatalf("violation recorded at %q, want the reorder victim b", ve.Member)
	}
	// The violation record names the message delivered before its
	// dependency (A) and the dependency it jumped (B).
	if got := tl.Label(ve, ve.Rec.A); got != "b!inject:2" {
		t.Fatalf("violating message = %q, want b!inject:2", got)
	}
	if got := tl.Label(ve, ve.Rec.B); got != "b!inject:1" {
		t.Fatalf("violated dependency = %q, want b!inject:1", got)
	}

	// The delivery diff must name the member whose order inverted, and
	// the witness's correct order must be on the same merged timeline so
	// the disagreement is visible across members.
	var named bool
	for _, d := range tl.DeliveryDiffs() {
		if d.Origin == "b!inject" && d.Label == "b!inject:1" {
			for _, m := range d.Members {
				named = named || m == "b"
			}
		}
	}
	if !named {
		t.Fatalf("delivery diffs did not name member b on b!inject:1: %+v", tl.DeliveryDiffs())
	}
	var witnessOK bool
	var hi uint64
	for _, e := range tl.Entries {
		if e.Member == "a" && e.Rec.Kind == flightrec.KindDeliver &&
			tl.Dumps[e.MemberIdx].Sym(e.Rec.A.Org) == "b!inject" {
			if e.Rec.A.Seq < hi {
				t.Fatalf("witness a delivered b!inject out of order too")
			}
			hi = e.Rec.A.Seq
			witnessOK = hi == 2
		}
	}
	if !witnessOK {
		t.Fatal("witness a's correct delivery order is missing from the merged timeline")
	}
}

// TestFlightRecorderQuietOnCleanRun pins the trigger logic: a clean run
// writes nothing (the boxes are post-mortem evidence), and FlightAlways
// overrides that for smoke pipelines.
func TestFlightRecorderQuietOnCleanRun(t *testing.T) {
	members := []string{"a", "b", "c"}
	net := transport.NewChanNet(transport.FaultModel{})
	defer func() { _ = net.Close() }()
	dir := t.TempDir()
	opts := chaosOptions(net, members, Schedule{})
	opts.SendsPerMember = 5
	opts.FlightDir = dir
	res, err := Run(opts)
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if !res.Converged || res.Violations != 0 {
		t.Fatalf("expected a clean run (converged=%v violations=%d)", res.Converged, res.Violations)
	}
	if len(res.FlightRecords) != 0 || res.HistoryFile != "" {
		t.Fatalf("clean run dumped flight records: %v %q", res.FlightRecords, res.HistoryFile)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("clean run left files in FlightDir: %v", ents)
	}

	net2 := transport.NewChanNet(transport.FaultModel{})
	defer func() { _ = net2.Close() }()
	opts2 := chaosOptions(net2, members, Schedule{})
	opts2.SendsPerMember = 5
	opts2.FlightDir = t.TempDir()
	opts2.FlightAlways = true
	res2, err := Run(opts2)
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if len(res2.FlightRecords) != len(members) {
		t.Fatalf("FlightAlways run: FlightRecords = %v, want %d dumps", res2.FlightRecords, len(members))
	}
	for _, p := range res2.FlightRecords {
		d, err := flightrec.ReadFile(p)
		if err != nil {
			t.Fatalf("ReadFile(%s): %v", p, err)
		}
		if d.Member == "" || len(d.Records) == 0 {
			t.Fatalf("dump %s is empty", p)
		}
	}
}
