// Package chaos drives the live broadcast stack (causal OSend engines
// under the total-order Sequencer) through deterministic, seeded crash and
// rejoin schedules, and checks that the survivors converge to the identical
// total order.
//
// The crash model is freeze-then-rejoin: a crashed member is partitioned
// away from every peer (Net.Isolate) and the driver stops pumping its
// sends, heartbeats, and failure-detector ticks — exactly what a crashed
// process looks like to the rest of the group. Recovery is a true rejoin:
// the frozen incarnation's engines are torn down (its volatile state is
// lost), the network path is restored, and a fresh stack catches up from a
// live peer's snapshot — the causal layer's delivered watermarks seed the
// new engine's frontier, the sequencer's SyncSnapshot carries the epoch,
// delivery frontier, retained assignments and holdback, and the
// anti-entropy fetch path fills in everything above the watermark from the
// origins' retained copies. Rejoin assumes the network has quiesced since
// the crash (no pre-crash frame still in flight); the schedule generator
// enforces a settle gap between a crash and its recovery. Production
// deployments would pair rejoin with per-incarnation member identities to
// drop that assumption; the suite documents rather than solves it.
//
// Schedules are pure data derived from a seed, so a failing run is
// reproducible by seed alone: the same seed yields the same action
// sequence on every run, on every transport.
package chaos

import (
	"fmt"
	"math/rand"
	"time"
)

// Action is one scheduled fault. Exactly one of Crash, Recover, Reorder,
// or the PartFrom/PartTo pair is set; At is the offset from the start of
// the run.
type Action struct {
	At      time.Duration
	Crash   string
	Recover string
	// RecoverDisk names a crashed member to restart from its own
	// write-ahead log (Options.Durable must be armed): volatile state is
	// replayed from disk — truncating any torn tail — and only the suffix
	// the log missed is fetched from peers. Contrast Recover, which takes
	// everything from a live donor's snapshot.
	RecoverDisk string
	// Reorder names a member at which the driver injects a fabricated
	// causal-order inversion into the observation plane: two dep-linked
	// phantom messages are reported delivered dependency-last at the
	// victim (and dependency-first at a healthy witness). The real engines
	// never see them — the run still converges — but the online auditor,
	// the offline CC/CCv/CM checker, and the flight recorders all witness
	// a genuine violation, which is exactly what the forensics pipeline
	// (auto-dump + causalfr) needs a deterministic trigger for. Requires
	// Options.Collector.
	Reorder string
	// PartFrom/PartTo name a one-way link: the action blocks (Block true)
	// or heals (Block false) only the PartFrom→PartTo direction, modelling
	// asymmetric routing failures — the victim's frames vanish while the
	// reverse path (and its acks/NACKs) still flows.
	PartFrom, PartTo string
	Block            bool
}

// String renders the action for logs and failure messages.
func (a Action) String() string {
	switch {
	case a.Crash != "":
		return fmt.Sprintf("%v crash %s", a.At, a.Crash)
	case a.Recover != "":
		return fmt.Sprintf("%v recover %s", a.At, a.Recover)
	case a.RecoverDisk != "":
		return fmt.Sprintf("%v restart-from-disk %s", a.At, a.RecoverDisk)
	case a.Reorder != "":
		return fmt.Sprintf("%v reorder %s", a.At, a.Reorder)
	case a.Block:
		return fmt.Sprintf("%v block %s→%s", a.At, a.PartFrom, a.PartTo)
	default:
		return fmt.Sprintf("%v heal %s→%s", a.At, a.PartFrom, a.PartTo)
	}
}

// Schedule is a deterministic fault plan: the seed that generated it plus
// the actions in time order.
type Schedule struct {
	Seed    int64
	Actions []Action
}

// KillLeader is the headline schedule: crash the initial (rank-0)
// sequencer mid-activity and never bring it back.
func KillLeader(members []string, at time.Duration) Schedule {
	return Schedule{Actions: []Action{{At: at, Crash: members[0]}}}
}

// RandomSchedule derives a crash/recover plan from seed. Invariants the
// generator maintains, so every generated schedule is survivable:
//
//   - at most a strict minority of members is down at any instant (the
//     election quorum stays reachable);
//   - the last member never crashes, so at least one uninterrupted
//     delivery log exists to audit against;
//   - a member recovers no sooner than settle after its crash, giving
//     in-flight pre-crash frames time to drain (see the package comment).
//
// The same (seed, members, horizon, n) always yields the same schedule.
func RandomSchedule(seed int64, members []string, horizon time.Duration, n int) Schedule {
	rng := rand.New(rand.NewSource(seed))
	settle := horizon / 6
	maxDown := (len(members) - 1) / 2
	eligible := members[:len(members)-1]

	crashedAt := make(map[string]time.Duration)
	var actions []Action
	at := horizon / 8
	for len(actions) < n && at < horizon {
		// Partition the choice space: recover someone if anyone is due (or
		// the down budget is exhausted), otherwise crash a live member.
		var due []string
		for m, t := range crashedAt {
			if at >= t+settle {
				due = append(due, m)
			}
		}
		sortStrings(due)
		switch {
		case len(due) > 0 && (len(crashedAt) >= maxDown || rng.Intn(2) == 0):
			m := due[rng.Intn(len(due))]
			delete(crashedAt, m)
			actions = append(actions, Action{At: at, Recover: m})
		case len(crashedAt) < maxDown:
			var alive []string
			for _, m := range eligible {
				if _, down := crashedAt[m]; !down {
					alive = append(alive, m)
				}
			}
			if len(alive) == 0 {
				break
			}
			m := alive[rng.Intn(len(alive))]
			crashedAt[m] = at
			actions = append(actions, Action{At: at, Crash: m})
		}
		at += settle/2 + time.Duration(rng.Int63n(int64(settle)))
	}
	return Schedule{Seed: seed, Actions: actions}
}

// WithDiskRecovery rewrites every Recover action into a RecoverDisk one:
// the same deterministic plan, with members restarting from their own
// logs instead of a donor snapshot. Invariants (quorum, settle gaps) are
// inherited from the source schedule.
func WithDiskRecovery(s Schedule) Schedule {
	out := Schedule{Seed: s.Seed, Actions: append([]Action(nil), s.Actions...)}
	for i := range out.Actions {
		if m := out.Actions[i].Recover; m != "" {
			out.Actions[i].Recover = ""
			out.Actions[i].RecoverDisk = m
		}
	}
	return out
}

// OneWayLossSchedule derives a plan of n sequential one-way partition
// windows from seed: each window blocks a random directed link for a
// bounded time, then heals it. Windows never overlap and every link is
// healed well before horizon, so a run with a reliability sublayer must
// converge — the schedule only ever makes links temporarily asymmetric,
// never permanently unreachable. The same (seed, members, horizon, n)
// always yields the same schedule.
func OneWayLossSchedule(seed int64, members []string, horizon time.Duration, n int) Schedule {
	rng := rand.New(rand.NewSource(seed))
	var actions []Action
	// Fit n block+heal windows in the first 3/4 of the horizon; the rest
	// is convergence slack.
	budget := horizon * 3 / 4
	slot := budget / time.Duration(n+1)
	at := slot / 2
	for i := 0; i < n && at < budget; i++ {
		from := members[rng.Intn(len(members))]
		to := members[rng.Intn(len(members))]
		for to == from {
			to = members[rng.Intn(len(members))]
		}
		width := slot/4 + time.Duration(rng.Int63n(int64(slot/2)))
		actions = append(actions,
			Action{At: at, PartFrom: from, PartTo: to, Block: true},
			Action{At: at + width, PartFrom: from, PartTo: to, Block: false},
		)
		at += slot
	}
	return Schedule{Seed: seed, Actions: actions}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
