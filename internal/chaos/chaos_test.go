package chaos

import (
	"os"
	"reflect"
	"testing"
	"time"

	"causalshare/internal/consistency"
	"causalshare/internal/obs"
	"causalshare/internal/telemetry"
	"causalshare/internal/trace"
	"causalshare/internal/transport"
)

// netCloser is what the tests need from a transport: the harness surface
// plus shutdown.
type netCloser interface {
	Net
	Close() error
}

func makeNet(t *testing.T, kind string) netCloser {
	t.Helper()
	switch kind {
	case "channet":
		return transport.NewChanNet(transport.FaultModel{})
	case "tcpnet":
		return transport.NewTCPNet()
	default:
		t.Fatalf("unknown net kind %q", kind)
		return nil
	}
}

func netKinds() []string { return []string{"channet", "tcpnet"} }

func chaosOptions(net Net, members []string, sched Schedule) Options {
	return Options{
		Members:        members,
		Net:            net,
		Schedule:       sched,
		SendsPerMember: 25,
		Step:           2 * time.Millisecond,
		FailTimeout:    60 * time.Millisecond,
		Patience:       12 * time.Millisecond,
		Timeout:        15 * time.Second,
		// Every chaos run carries the online consistency auditor plus the
		// offline history recorder; auditAll requires the former reported
		// nothing and the latter's whole-history CC/CCv/CM verdicts hold.
		// Declared mode: the stack's upper layers chain their own traffic
		// but do not re-declare every delivery they observed, which is the
		// paper's Λ-causality — the full-causality model would report
		// violations OSend never promised to prevent.
		Collector: trace.NewCollector(trace.Config{}),
		Recorder:  consistency.NewDeclaredRecorder(),
		// CHAOS_FLIGHT_DIR (set by CI) arms every member's black-box
		// flight recorder; a run that ends badly — non-convergence, audit
		// violations, failed CC/CCv/CM verdicts — dumps all boxes plus the
		// recorded history there, and the workflow uploads the directory
		// as a failure artifact for causalfr post-mortems. Unset (the
		// local default) this is a no-op. Failing runs share the
		// directory; member files carry the last failure.
		FlightDir: os.Getenv("CHAOS_FLIGHT_DIR"),
	}
}

// survivors returns the ids of members that are alive and never rejoined
// (their logs cover the whole run).
func survivors(res *Result) []string {
	var out []string
	for id, m := range res.Members {
		if m.Alive && !m.Rejoined {
			out = append(out, id)
		}
	}
	return out
}

func assertSurvivorAgreement(t *testing.T, res *Result) {
	t.Helper()
	ids := survivors(res)
	if len(ids) < 2 {
		t.Fatalf("want at least 2 uninterrupted survivors, got %v", ids)
	}
	var ref *MemberResult
	var refID string
	for _, id := range ids {
		m := res.Members[id]
		if ref == nil {
			ref, refID = m, id
			continue
		}
		if len(m.Order) != len(ref.Order) {
			t.Fatalf("survivor %s delivered %d, %s delivered %d",
				refID, len(ref.Order), id, len(m.Order))
		}
		if m.Digest != ref.Digest {
			t.Fatalf("survivor digests diverge: %s=%x %s=%x", refID, ref.Digest, id, m.Digest)
		}
		for i := range ref.Order {
			if m.Order[i] != ref.Order[i] {
				t.Fatalf("survivor order diverges at %d: %s=%q %s=%q",
					i, refID, ref.Order[i], id, m.Order[i])
			}
		}
	}
}

// auditAll runs the obs total-order audit over every member's log,
// aligning rejoined members at their snapshot frontier. Members that
// were dead at the end of the run are excluded: the guarantee is
// non-uniform total order, so a crashed member may have delivered a
// short unstable tail (e.g. a leader's own ORDER self-delivered in the
// instant before the freeze, every network copy of it lost) that the
// survivors' next epoch legitimately re-sequences.
func auditAll(t *testing.T, res *Result) {
	t.Helper()
	orders := make(map[string][]string)
	offsets := make(map[string]uint64)
	for id, m := range res.Members {
		if !m.Alive {
			continue
		}
		orders[id] = m.Order
		offsets[id] = m.ResumedAt
	}
	if rep := obs.AuditTotalOrder(orders, offsets); !rep.Consistent() {
		t.Fatalf("total-order audit: %s", rep.Divergence)
	}
	if res.Violations != 0 {
		t.Fatalf("online trace audit caught %d violations: %v", res.Violations, res.ViolationLog)
	}
	if res.Consistency != nil && !res.Consistency.AllHold() {
		t.Fatalf("offline consistency check: %s", res.Consistency)
	}
}

// TestLeaderCrashConverges is the tentpole scenario: kill the initial
// (rank-0) sequencer mid-activity and require every survivor to converge
// to the identical total order and digest — on both transports, and
// reproducibly across three consecutive runs of the same schedule.
func TestLeaderCrashConverges(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	sched := KillLeader(members, 40*time.Millisecond)
	for _, kind := range netKinds() {
		t.Run(kind, func(t *testing.T) {
			for run := 0; run < 3; run++ {
				net := makeNet(t, kind)
				reg := telemetry.NewRegistry()
				opts := chaosOptions(net, members, sched)
				opts.Telemetry = reg
				res, err := Run(opts)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Converged {
					t.Fatalf("run %d: no convergence within %v", run, opts.Timeout)
				}
				assertSurvivorAgreement(t, res)
				auditAll(t, res)
				for _, id := range survivors(res) {
					if res.Members[id].Epoch == 0 {
						t.Errorf("run %d: survivor %s never left epoch 0", run, id)
					}
				}
				if res.Members["a"].Alive {
					t.Errorf("run %d: crashed leader reported alive", run)
				}
				// Survivors keep delivering after the crash: three members
				// complete their full quota past the takeover.
				want := 0
				for _, id := range survivors(res) {
					want += res.Members[id].Sent
				}
				if got := len(res.Members[survivors(res)[0]].Order); got < want {
					t.Errorf("run %d: survivors delivered %d < %d own sends", run, got, want)
				}
				snap := reg.Snapshot()
				if snap.Get("total_elections_total") == 0 {
					t.Error("total_elections_total not incremented")
				}
				assertFailoverLatencyObserved(t, snap)
				_ = net.Close()
			}
		})
	}
}

func assertFailoverLatencyObserved(t *testing.T, snap telemetry.Snapshot) {
	t.Helper()
	for _, h := range snap.Histograms {
		if h.Name == "total_failover_latency_seconds" {
			if h.Count == 0 {
				t.Error("total_failover_latency_seconds has no observations")
			}
			return
		}
	}
	t.Error("total_failover_latency_seconds not registered")
}

// TestLeaderCrashStallsWithoutFailover pins the pre-failover behavior:
// with FailTimeout zero (the legacy fixed-sequencer mode) the same
// schedule never converges — survivors' data waits forever for a sequence
// number from the dead leader.
func TestLeaderCrashStallsWithoutFailover(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	net := makeNet(t, "channet")
	defer func() { _ = net.Close() }()
	opts := chaosOptions(net, members, KillLeader(members, 30*time.Millisecond))
	opts.FailTimeout = 0
	opts.Timeout = 1200 * time.Millisecond
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("legacy fixed-sequencer mode converged past a leader crash")
	}
	for _, id := range survivors(res) {
		m := res.Members[id]
		if m.Sent == 0 {
			continue
		}
		// Survivors sent their quota but none of the post-crash messages
		// were sequenced.
		if len(m.Order) >= m.Sent*len(members) {
			t.Fatalf("survivor %s delivered %d messages despite a dead sequencer", id, len(m.Order))
		}
	}
}

// TestCrashRejoinCatchesUp crashes a follower, lets the group advance,
// rejoins it from a snapshot, and requires the rejoined member to track
// the group's frontier again — with its post-rejoin suffix position-
// consistent with the uninterrupted survivors.
func TestCrashRejoinCatchesUp(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	sched := Schedule{Actions: []Action{
		{At: 30 * time.Millisecond, Crash: "c"},
		{At: 150 * time.Millisecond, Recover: "c"},
	}}
	for _, kind := range netKinds() {
		t.Run(kind, func(t *testing.T) {
			net := makeNet(t, kind)
			defer func() { _ = net.Close() }()
			res, err := Run(chaosOptions(net, members, sched))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatal("no convergence after rejoin")
			}
			assertSurvivorAgreement(t, res)
			auditAll(t, res)
			mc := res.Members["c"]
			if !mc.Alive || !mc.Rejoined {
				t.Fatalf("member c: alive=%v rejoined=%v", mc.Alive, mc.Rejoined)
			}
			if mc.ResumedAt == 0 || len(mc.Order) == 0 {
				t.Fatalf("rejoined member delivered nothing (resumedAt=%d)", mc.ResumedAt)
			}
			// The rejoined suffix must end exactly at the agreed frontier.
			if got := mc.ResumedAt + uint64(len(mc.Order)); got != res.Frontier {
				t.Fatalf("rejoined member stops at %d, frontier is %d", got, res.Frontier)
			}
		})
	}
}

// TestLeaderCrashWithRejoin crashes the leader AND rejoins it later: the
// old leader must come back as a follower of the new epoch and converge.
func TestLeaderCrashWithRejoin(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	sched := Schedule{Actions: []Action{
		{At: 40 * time.Millisecond, Crash: "a"},
		{At: 220 * time.Millisecond, Recover: "a"},
	}}
	net := makeNet(t, "channet")
	defer func() { _ = net.Close() }()
	res, err := Run(chaosOptions(net, members, sched))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("no convergence after leader rejoin")
	}
	assertSurvivorAgreement(t, res)
	auditAll(t, res)
	ma := res.Members["a"]
	if !ma.Alive || !ma.Rejoined {
		t.Fatalf("member a: alive=%v rejoined=%v", ma.Alive, ma.Rejoined)
	}
	if ma.Epoch == 0 {
		t.Error("rejoined ex-leader still at epoch 0")
	}
}

// TestRandomScheduleInvariants checks the generator's safety envelope
// over many seeds: monotone action times, never more than a strict
// minority down, the settle gap between a crash and its recovery, and the
// last member never crashed.
func TestRandomScheduleInvariants(t *testing.T) {
	members := []string{"a", "b", "c", "d", "e"}
	horizon := 500 * time.Millisecond
	settle := horizon / 6
	for seed := int64(0); seed < 200; seed++ {
		sched := RandomSchedule(seed, members, horizon, 6)
		crashedAt := make(map[string]time.Duration)
		last := time.Duration(-1)
		for _, a := range sched.Actions {
			if a.At < last {
				t.Fatalf("seed %d: actions out of order: %v", seed, sched.Actions)
			}
			last = a.At
			switch {
			case a.Crash != "":
				if a.Crash == members[len(members)-1] {
					t.Fatalf("seed %d: crashed the spare member", seed)
				}
				if _, down := crashedAt[a.Crash]; down {
					t.Fatalf("seed %d: crashed %s twice", seed, a.Crash)
				}
				crashedAt[a.Crash] = a.At
				if len(crashedAt) > (len(members)-1)/2 {
					t.Fatalf("seed %d: majority down at %v", seed, a.At)
				}
			case a.Recover != "":
				at, down := crashedAt[a.Recover]
				if !down {
					t.Fatalf("seed %d: recovered live member %s", seed, a.Recover)
				}
				if a.At < at+settle {
					t.Fatalf("seed %d: recovery of %s before settle gap", seed, a.Recover)
				}
				delete(crashedAt, a.Recover)
			default:
				t.Fatalf("seed %d: empty action", seed)
			}
		}
	}
}

// TestRandomScheduleDeterministic pins reproducibility: the same seed
// always yields the identical schedule.
func TestRandomScheduleDeterministic(t *testing.T) {
	members := []string{"a", "b", "c", "d", "e"}
	a := RandomSchedule(42, members, 500*time.Millisecond, 6)
	b := RandomSchedule(42, members, 500*time.Millisecond, 6)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", a.Actions, b.Actions)
	}
	c := RandomSchedule(43, members, 500*time.Millisecond, 6)
	if reflect.DeepEqual(a.Actions, c.Actions) && len(a.Actions) > 0 {
		t.Fatal("different seeds produced identical non-trivial schedules")
	}
}

// TestRandomChaosConverges runs generated schedules end to end on the
// live stack and audits the result.
func TestRandomChaosConverges(t *testing.T) {
	members := []string{"a", "b", "c", "d", "e"}
	for _, seed := range []int64{7, 21} {
		sched := RandomSchedule(seed, members, 400*time.Millisecond, 4)
		net := makeNet(t, "channet")
		opts := chaosOptions(net, members, sched)
		opts.SendsPerMember = 30
		res, err := Run(opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Converged {
			t.Fatalf("seed %d: no convergence (schedule %v)", seed, sched.Actions)
		}
		assertSurvivorAgreement(t, res)
		auditAll(t, res)
		_ = net.Close()
	}
}
