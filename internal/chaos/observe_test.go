package chaos

import (
	"testing"
	"time"

	"causalshare/internal/telemetry"
	"causalshare/internal/transport"
)

// perMemberRegistries arms Options.TelemetryFor with one registry per
// member, the deployment shape the observability plane scrapes.
func perMemberRegistries(opts *Options) map[string]*telemetry.Registry {
	regs := make(map[string]*telemetry.Registry, len(opts.Members))
	for _, id := range opts.Members {
		regs[id] = telemetry.NewRegistry()
	}
	opts.TelemetryFor = func(member string) *telemetry.Registry { return regs[member] }
	return regs
}

// TestObservedLagReturnsToZeroAfterHeal runs a one-way partition that
// heals on a lossless transport and asserts the health signals causaltop
// watches: once the run converges, every member's per-peer holdback
// depth and pending age are back at zero — causal lag is a transient of
// the fault, not a residue.
func TestObservedLagReturnsToZeroAfterHeal(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	net := transport.NewChanNet(transport.FaultModel{})
	defer func() { _ = net.Close() }()
	sched := Schedule{Actions: []Action{
		{At: 20 * time.Millisecond, PartFrom: "a", PartTo: "b", Block: true},
		{At: 320 * time.Millisecond, PartFrom: "a", PartTo: "b", Block: false},
	}}
	opts := chaosOptions(net, members, sched)
	regs := perMemberRegistries(&opts)
	res, err := Run(opts)
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if !res.Converged {
		t.Fatal("run did not converge after heal")
	}
	for id, reg := range regs {
		snap := reg.Snapshot()
		for _, g := range snap.Gauges {
			switch g.Name {
			case "causal_peer_holdback_depth":
				if g.Value != 0 {
					t.Errorf("%s: holdback toward %s = %d after heal, want 0", id, g.Label, g.Value)
				}
			case "causal_peer_pending_age_ms":
				if g.Value != 0 {
					t.Errorf("%s: pending age toward %s = %dms after heal, want 0", id, g.Label, g.Value)
				}
			}
		}
		// The run moved real messages, so visibility histograms must have
		// filled (every member heard from every other).
		var count uint64
		for _, h := range snap.Histograms {
			if h.Name == "causal_visibility_seconds" {
				count += h.Count
			}
		}
		if count == 0 {
			t.Errorf("%s: no visibility observations recorded", id)
		}
	}
}

// TestObservedVisibilityBoundedUnderLoss reruns the headline 30%%-loss
// scenario with per-member registries and asserts the observability
// plane's latency story: even while every third frame vanishes, the p99
// send-to-deliver visibility stays within the repair budget (a few
// NACK/RTO round trips), and the per-link retransmit counters actually
// saw the repair traffic that bought it.
func TestObservedVisibilityBoundedUnderLoss(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	net := transport.NewChanNet(transport.FaultModel{DropProb: 0.3, Seed: 7})
	defer func() { _ = net.Close() }()
	opts := lossOptions(net, members, Schedule{Seed: 7})
	regs := perMemberRegistries(&opts)
	res, err := Run(opts)
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if !res.Converged {
		t.Fatal("run did not converge under loss")
	}
	var retransmits uint64
	for id, reg := range regs {
		snap := reg.Snapshot()
		p99 := snap.Quantile("causal_visibility_seconds", 0.99)
		if p99 <= 0 {
			t.Errorf("%s: visibility p99 = %v, want > 0 (histograms empty?)", id, p99)
		}
		// Budget: the sublayer's stall timeout is 300ms and repair is
		// NACK-driven well before that; 5s of p99 headroom means even the
		// unluckiest frame was repaired within a handful of round trips.
		if p99 > 5.0 {
			t.Errorf("%s: visibility p99 = %.3fs under 30%% loss, want <= 5s", id, p99)
		}
		retransmits += snap.Get("reliable_link_retransmits_total")
	}
	if retransmits == 0 {
		t.Error("30% loss produced zero per-link retransmits: link instrumentation is dead")
	}
	_ = res
}
