package chaos

import (
	"strings"
	"testing"
	"time"

	"causalshare/internal/reliable"
	"causalshare/internal/transport"
	"causalshare/internal/wal"
)

// durableOptions arms per-member write-ahead logs on top of the standard
// chaos gauntlet (online auditor + offline CC/CCv/CM checker).
func durableOptions(net Net, members []string, sched Schedule, policy wal.Policy) Options {
	opts := chaosOptions(net, members, sched)
	opts.Durable = &Durability{Policy: policy, Interval: time.Millisecond}
	return opts
}

// dataFrontierDigest digests only the data chains of a frontier: the
// "~seq" control chains (sequencer heartbeats) tick continuously, so two
// perfectly consistent members still differ on them at any instant.
func dataFrontierDigest(wm map[string]uint64) uint64 {
	data := make(map[string]uint64, len(wm))
	for o, s := range wm {
		if !strings.HasSuffix(o, "~seq") {
			data[o] = s
		}
	}
	return wal.FrontierDigest(data)
}

// requireDiskRecovery asserts the member actually served its restart from
// its own log rather than silently falling back to a donor snapshot.
func requireDiskRecovery(t *testing.T, res *Result, id string) {
	t.Helper()
	m := res.Members[id]
	if !m.Alive || !m.Rejoined {
		t.Fatalf("member %s: alive=%v rejoined=%v", id, m.Alive, m.Rejoined)
	}
	if m.DiskRecoveries == 0 {
		t.Fatalf("member %s never recovered from disk", id)
	}
}

// TestDiskRecoveryCatchesUp is the tentpole scenario: crash a follower
// mid-activity, restart it from its own write-ahead log, and require it
// to track the group's frontier again with the whole run passing the
// auditor and the offline consistency checker. Per-record fsync means
// the restarted member's log already holds everything it ever delivered.
func TestDiskRecoveryCatchesUp(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	sched := Schedule{Actions: []Action{
		{At: 30 * time.Millisecond, Crash: "c"},
		{At: 150 * time.Millisecond, RecoverDisk: "c"},
	}}
	for _, kind := range netKinds() {
		t.Run(kind, func(t *testing.T) {
			net := makeNet(t, kind)
			defer func() { _ = net.Close() }()
			res, err := Run(durableOptions(net, members, sched, wal.PolicyEach))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatal("no convergence after restart-from-disk")
			}
			assertSurvivorAgreement(t, res)
			auditAll(t, res)
			requireDiskRecovery(t, res, "c")
			mc := res.Members["c"]
			if got := mc.ResumedAt + uint64(len(mc.Order)); got != res.Frontier {
				t.Fatalf("restarted member stops at %d, frontier is %d", got, res.Frontier)
			}
			// Every live member agrees on the data-chain frontier, digest-
			// for-digest — the restarted one included. Control chains
			// ("~seq" heartbeats) legitimately drift by a tick or two at
			// the snapshot instant, so they are excluded.
			var ref uint64
			var refID string
			for id, m := range res.Members {
				if !m.Alive {
					continue
				}
				d := dataFrontierDigest(m.Frontier)
				if ref == 0 {
					ref, refID = d, id
				} else if d != ref {
					t.Fatalf("data frontier digest diverges: %s=%x %s=%x", refID, ref, id, d)
				}
			}
		})
	}
}

// TestDiskRecoveryLeaderCrash restarts the crashed LEADER from its own
// log: it must come back as a follower of the new epoch, reconcile its
// replayed assignments with the survivors' re-proposals, and converge.
func TestDiskRecoveryLeaderCrash(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	sched := Schedule{Actions: []Action{
		{At: 40 * time.Millisecond, Crash: "a"},
		{At: 220 * time.Millisecond, RecoverDisk: "a"},
	}}
	net := makeNet(t, "channet")
	defer func() { _ = net.Close() }()
	res, err := Run(durableOptions(net, members, sched, wal.PolicyEach))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("no convergence after leader restart-from-disk")
	}
	assertSurvivorAgreement(t, res)
	auditAll(t, res)
	requireDiskRecovery(t, res, "a")
	if res.Members["a"].Epoch == 0 {
		t.Error("restarted ex-leader still at epoch 0")
	}
}

// TestDiskRecoveryAsyncLosesTailSafely runs the restart under the async
// sync policy with torn writes armed: the crash throws away an unsynced
// (and torn) tail, so the restarted member resumes from an EARLIER state
// than it reached — and must fill the gap from its peers without ever
// minting a duplicate label on its own chain or failing a consistency
// verdict. This is the label-chain guard's regression test.
func TestDiskRecoveryAsyncLosesTailSafely(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	sched := Schedule{Actions: []Action{
		{At: 60 * time.Millisecond, Crash: "c"},
		{At: 200 * time.Millisecond, RecoverDisk: "c"},
	}}
	for _, seed := range []int64{3, 17, 29} {
		net := makeNet(t, "channet")
		opts := durableOptions(net, members, sched, wal.PolicyAsync)
		opts.Durable.Interval = time.Hour // nothing syncs unless the policy forces it
		opts.Durable.FSFor = func(member string) wal.FS {
			return wal.NewMemFS(seed, wal.Faults{TornWrites: true})
		}
		res, err := Run(opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Converged {
			t.Fatalf("seed %d: no convergence with a torn async log", seed)
		}
		assertSurvivorAgreement(t, res)
		auditAll(t, res)
		requireDiskRecovery(t, res, "c")
		_ = net.Close()
	}
}

// TestDiskRecoveryUnderLoss layers the restart over 20% frame loss with
// the reliability sublayer repairing links: the log replay and the
// anti-entropy suffix fetch must compose with gap repair.
func TestDiskRecoveryUnderLoss(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	sched := Schedule{Actions: []Action{
		{At: 50 * time.Millisecond, Crash: "c"},
		{At: 400 * time.Millisecond, RecoverDisk: "c"},
	}}
	net := lossNet(t, "channet", transport.FaultModel{DropProb: 0.2, Seed: 11})
	defer func() { _ = net.Close() }()
	opts := durableOptions(net, members, sched, wal.PolicyInterval)
	opts.Timeout = 60 * time.Second
	// The crashed member is a follower, so failover buys nothing here —
	// but heavy loss stalls heartbeats long enough to trigger it
	// spuriously. Keep the fixed sequencer, as the pure-loss suite does.
	opts.FailTimeout = 0
	opts.Reliable = &reliable.Config{
		Window:       128,
		AckEvery:     8,
		Tick:         2 * time.Millisecond,
		StallTimeout: 300 * time.Millisecond,
		ShedAfter:    500 * time.Millisecond,
		Seed:         11,
	}
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("no convergence: restart-from-disk under loss")
	}
	assertSurvivorAgreement(t, res)
	auditAll(t, res)
	requireDiskRecovery(t, res, "c")
}

// TestDiskRecoveryRandomSchedule runs seeded random crash/restart plans
// with every recovery served from disk instead of a donor snapshot.
func TestDiskRecoveryRandomSchedule(t *testing.T) {
	members := []string{"a", "b", "c", "d", "e"}
	for _, seed := range []int64{5, 23} {
		sched := WithDiskRecovery(RandomSchedule(seed, members, 600*time.Millisecond, 4))
		net := makeNet(t, "channet")
		res, err := Run(durableOptions(net, members, sched, wal.PolicyInterval))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Converged {
			t.Fatalf("seed %d: no convergence (schedule %v)", seed, sched.Actions)
		}
		assertSurvivorAgreement(t, res)
		auditAll(t, res)
		_ = net.Close()
	}
}

// TestDiskRecoveryRequiresDurability pins the failure mode: a
// RecoverDisk action without Options.Durable is a schedule bug and must
// surface as an error, not a silent snapshot fallback.
func TestDiskRecoveryRequiresDurability(t *testing.T) {
	members := []string{"a", "b", "c"}
	sched := Schedule{Actions: []Action{
		{At: 20 * time.Millisecond, Crash: "c"},
		{At: 60 * time.Millisecond, RecoverDisk: "c"},
	}}
	net := makeNet(t, "channet")
	defer func() { _ = net.Close() }()
	_, err := Run(chaosOptions(net, members, sched))
	if err == nil || !strings.Contains(err.Error(), "without durability") {
		t.Fatalf("want durability error, got %v", err)
	}
}

// TestDiskRecoveryAfterSnapshotRejoin chains the two recovery paths: a
// snapshot rejoin (which wipes the log and checkpoints the donated
// baseline), a second crash, and a restart from disk that must resume
// from that checkpoint plus whatever journaled on top of it.
func TestDiskRecoveryAfterSnapshotRejoin(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	sched := Schedule{Actions: []Action{
		{At: 30 * time.Millisecond, Crash: "c"},
		{At: 120 * time.Millisecond, Recover: "c"},
		{At: 240 * time.Millisecond, Crash: "c"},
		{At: 360 * time.Millisecond, RecoverDisk: "c"},
	}}
	net := makeNet(t, "channet")
	defer func() { _ = net.Close() }()
	res, err := Run(durableOptions(net, members, sched, wal.PolicyEach))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("no convergence chaining snapshot rejoin and disk restart")
	}
	assertSurvivorAgreement(t, res)
	auditAll(t, res)
	requireDiskRecovery(t, res, "c")
}

// TestDurableRunExportsWALSegments: with a flight dir armed and
// FlightAlways set, a durable run dumps every member's log segments
// alongside the black boxes — the artifact CI uploads on failures.
func TestDurableRunExportsWALSegments(t *testing.T) {
	members := []string{"a", "b", "c"}
	net := makeNet(t, "channet")
	defer func() { _ = net.Close() }()
	opts := durableOptions(net, members, Schedule{}, wal.PolicyEach)
	opts.FlightDir = t.TempDir()
	opts.FlightAlways = true
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("clean durable run did not converge")
	}
	walFiles := 0
	for _, p := range res.FlightRecords {
		if strings.Contains(p, "/wal/") && strings.HasSuffix(p, ".wal") {
			walFiles++
		}
	}
	if walFiles < len(members) {
		t.Fatalf("want >= %d exported segments, got %d in %v", len(members), walFiles, res.FlightRecords)
	}
}
