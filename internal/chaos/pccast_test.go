package chaos

import (
	"testing"
	"time"

	"causalshare/internal/transport"
)

// pccastOptions arms a run with the PC-cast engine: reliability sublayer
// mandatory (the engine's FIFO links), auditor always on.
//
// The send window is provisioned far above the loss default. PC-cast
// floods n·(n−1) frames per message through each member's single FIFO
// stream, and a crashed peer stops acking: the window toward it must
// absorb the full flood rate for at least the failure-detection window,
// or every survivor's outbox blocks mid-multicast, heartbeats stall
// behind data, and live members falsely suspect each other — elections
// then complete without the blocked members' acks and can re-assign
// labels those members already delivered. Window ≥ rate × StallTimeout
// is the deployment rule; DESIGN.md §11 spells it out.
func pccastOptions(net Net, members []string, sched Schedule) Options {
	opts := lossOptions(net, members, sched)
	opts.Engine = "pccast"
	opts.Reliable.Window = 2048
	opts.Reliable.StallTimeout = raceScale * 300 * time.Millisecond
	opts.Reliable.ShedAfter = raceScale * 500 * time.Millisecond
	return opts
}

// TestPCCastRequiresReliable pins the fail-fast contract: chaos schedules
// isolate and partition members, so PCCast without the reliability
// sublayer would silently lose its ordering guarantee — Run must refuse.
func TestPCCastRequiresReliable(t *testing.T) {
	net := makeNet(t, "channet")
	defer func() { _ = net.Close() }()
	opts := chaosOptions(net, []string{"a", "b", "c"}, Schedule{})
	opts.Engine = "pccast"
	if _, err := Run(opts); err == nil {
		t.Fatal("Run accepted engine=pccast without a reliability sublayer")
	}
	opts.Engine = "no-such-engine"
	if _, err := Run(opts); err == nil {
		t.Fatal("Run accepted an unknown engine name")
	}
}

// TestPCCastLossConverges is the PC-cast robustness headline: 30%%
// independent frame loss, repaired into reliable FIFO links below the
// engine, must still yield the identical total order at every member with
// zero causal-order violations — while the engine itself spends one byte
// of ordering metadata per frame.
func TestPCCastLossConverges(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	for _, kind := range netKinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			for _, seed := range []int64{7, 21, 42} {
				net := lossNet(t, kind, transport.FaultModel{DropProb: 0.3, Seed: seed})
				res := runLoss(t, pccastOptions(net, members, Schedule{Seed: seed}))
				_ = net.Close()
				for id, m := range res.Members {
					if m.Sent != 25 {
						t.Fatalf("seed %d: %s sent %d/25", seed, id, m.Sent)
					}
				}
			}
		})
	}
}

// TestPCCastBurstLossConverges layers Gilbert–Elliott loss bursts under
// the engine: correlated gaps stress the link layer's NACK/RTO repair,
// and the flood's redundant copies must all dedup cleanly.
func TestPCCastBurstLossConverges(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	fm := transport.FaultModel{
		DropProb:  0.05,
		BurstProb: 0.02,
		BurstHeal: 0.2,
		BurstDrop: 0.9,
	}
	for _, seed := range []int64{7, 21} {
		m := fm
		m.Seed = seed
		net := lossNet(t, "channet", m)
		res := runLoss(t, pccastOptions(net, members, Schedule{Seed: seed}))
		_ = net.Close()
		if res.Violations != 0 {
			t.Fatalf("seed %d: %d violations", seed, res.Violations)
		}
	}
}

// TestPCCastOneWayPartitionChurn schedules asymmetric link blackouts over
// background loss: directions go dark and heal while the flood keeps
// disseminating over the surviving directions.
func TestPCCastOneWayPartitionChurn(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	for _, seed := range []int64{7, 21} {
		sched := OneWayLossSchedule(seed, members, 800*time.Millisecond, 3)
		net := lossNet(t, "channet", transport.FaultModel{DropProb: 0.1, Seed: seed})
		res := runLoss(t, pccastOptions(net, members, sched))
		_ = net.Close()
		if res.Violations != 0 {
			t.Fatalf("seed %d: %d violations", seed, res.Violations)
		}
	}
}

// TestPCCastCrashRejoinCatchesUp crashes a member and rejoins it: the
// fresh incarnation seeds frontiers from live peers, the link layer's
// resync verdicts drive MarkDown/SyncWith, and the rejoined suffix must
// end exactly at the agreed frontier.
func TestPCCastCrashRejoinCatchesUp(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	sched := Schedule{Actions: []Action{
		{At: 30 * time.Millisecond, Crash: "c"},
		{At: 150 * time.Millisecond, Recover: "c"},
	}}
	for _, kind := range netKinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			net := makeNet(t, kind)
			defer func() { _ = net.Close() }()
			opts := pccastOptions(net, members, sched)
			opts.FailTimeout = raceScale * 60 * time.Millisecond
			res, err := Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatal("no convergence after rejoin")
			}
			assertSurvivorAgreement(t, res)
			auditAll(t, res)
			mc := res.Members["c"]
			if !mc.Alive || !mc.Rejoined {
				t.Fatalf("member c: alive=%v rejoined=%v", mc.Alive, mc.Rejoined)
			}
			if got := mc.ResumedAt + uint64(len(mc.Order)); got != res.Frontier {
				t.Fatalf("rejoined member stops at %d, frontier is %d", got, res.Frontier)
			}
		})
	}
}

// TestPCCastLeaderCrashFailover kills the leader under loss: shed
// verdicts feed the failure detector, failover completes, and the old
// leader's link is torn at every survivor (quorum exclusion) without
// stalling convergence.
func TestPCCastLeaderCrashFailover(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	net := lossNet(t, "channet", transport.FaultModel{DropProb: 0.1, Seed: 7})
	defer func() { _ = net.Close() }()
	opts := pccastOptions(net, members, KillLeader(members, 60*time.Millisecond))
	opts.FailTimeout = raceScale * 250 * time.Millisecond
	res := runLoss(t, opts)
	dead := res.Members[members[0]]
	if dead.Alive {
		t.Fatal("crashed leader reported alive")
	}
	for id, m := range res.Members {
		if id != members[0] && m.Epoch == 0 {
			t.Fatalf("%s never moved past epoch 0", id)
		}
	}
}

// TestPCCastRandomChaosConverges runs the randomized crash/partition
// generator under the PC-cast engine across seeds: whatever the schedule
// throws, survivors converge with a clean audit.
func TestPCCastRandomChaosConverges(t *testing.T) {
	members := []string{"a", "b", "c", "d", "e"}
	for _, seed := range []int64{3, 11} {
		sched := RandomSchedule(seed, members, 600*time.Millisecond, 4)
		net := makeNet(t, "channet")
		opts := pccastOptions(net, members, sched)
		opts.FailTimeout = raceScale * 60 * time.Millisecond
		res, err := Run(opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Converged {
			t.Fatalf("seed %d: no convergence", seed)
		}
		assertSurvivorAgreement(t, res)
		auditAll(t, res)
		_ = net.Close()
	}
}
