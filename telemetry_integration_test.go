// Integration test for the runtime telemetry layer: a live four-layer
// stack (transport → causal → total → core) shares one registry and one
// event ring, and the HTTP exposition endpoints serve instruments from
// every layer.
package causalshare_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"causalshare/internal/causal"
	"causalshare/internal/core"
	"causalshare/internal/group"
	"causalshare/internal/message"
	"causalshare/internal/shareddata"
	"causalshare/internal/telemetry"
	"causalshare/internal/total"
	"causalshare/internal/transport"
)

func TestMetricsEndpointServesAllLayers(t *testing.T) {
	const n = 3
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("m%02d", i)
	}
	grp := group.MustNew("itest", ids)
	reg := telemetry.NewRegistry()
	ring := telemetry.NewRing(1024)
	net := transport.NewChanNetObserved(transport.FaultModel{}, reg)
	defer func() { _ = net.Close() }()

	replicas := make([]*core.Replica, 0, n)
	var engines []*causal.OSend
	var layers []*total.Sequencer
	defer func() {
		for _, l := range layers {
			_ = l.Close()
		}
		for _, e := range engines {
			_ = e.Close()
		}
	}()
	for _, id := range ids {
		rep, err := core.NewReplica(core.ReplicaConfig{
			Self:      id,
			Initial:   shareddata.NewCounter(0),
			Apply:     shareddata.ApplyCounter,
			Telemetry: reg,
			Trace:     ring,
		})
		if err != nil {
			t.Fatal(err)
		}
		sq, err := total.NewSequencer(total.Config{
			Self: id, Group: grp, Deliver: rep.Deliver, Telemetry: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		conn, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := causal.NewOSend(causal.OSendConfig{
			Self: id, Group: grp, Conn: conn, Deliver: sq.Ingest,
			Telemetry: reg, Trace: ring,
		})
		if err != nil {
			t.Fatal(err)
		}
		sq.Bind(eng)
		replicas = append(replicas, rep)
		engines = append(engines, eng)
		layers = append(layers, sq)
	}

	// Drive an activity through the full stack: commutative ops then a
	// read, which closes the activity and establishes a stable point.
	const ops = 8
	for i := 0; i < ops-1; i++ {
		op := shareddata.Inc()
		if _, err := layers[0].ASend(op.Op, op.Kind, op.Body, message.After()); err != nil {
			t.Fatal(err)
		}
	}
	rd := shareddata.Read()
	if _, err := layers[0].ASend(rd.Op, rd.Kind, rd.Body, message.After()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		done := true
		for _, rep := range replicas {
			if rep.Applied() < ops {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replicas did not converge")
		}
		time.Sleep(time.Millisecond)
	}

	srv, err := telemetry.Serve("127.0.0.1:0", reg, ring)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	text := get("/metrics")
	// One instrument per layer must appear in Prometheus exposition form.
	for _, name := range []string{
		"transport_frames_sent_total",      // transport
		"causal_osend_delivered_total",     // causal
		"total_delivered_total",            // total order
		"core_stable_points_total",         // core
		"causal_osend_delivery_seconds",    // a histogram, exercises _bucket output
		"total_sequencer_assigned_total",   // sequencer-specific
		"core_stable_interval_seconds_sum", // histogram sum line
	} {
		if !strings.Contains(text, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
	if !strings.Contains(text, "# TYPE transport_frames_sent_total counter") {
		t.Error("/metrics missing TYPE comment for counter")
	}
	if !strings.Contains(text, `le="+Inf"`) {
		t.Error("/metrics missing +Inf histogram bucket")
	}

	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(get("/vars")), &snap); err != nil {
		t.Fatalf("/vars is not a JSON snapshot: %v", err)
	}
	if snap.Get("transport_frames_sent_total") == 0 {
		t.Error("/vars shows zero frames sent after live traffic")
	}
	if snap.Get("core_stable_points_total") != n {
		t.Errorf("core_stable_points_total = %d, want %d (one per replica)",
			snap.Get("core_stable_points_total"), n)
	}

	trace := get("/trace")
	for _, kind := range []string{"send", "deliver", "stable"} {
		if !strings.Contains(trace, kind) {
			t.Errorf("/trace missing %q events", kind)
		}
	}
}
