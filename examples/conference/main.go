// Conference: the paper's distributed-conferencing scenario (§5.2 and
// reference [11]). Three participants on different workstations share a
// design document. Annotations are commutative — they may arrive in any
// order at each site — while editing a section and publishing a revision
// are non-commutative and synchronize everyone.
//
// The example shows replicas' annotation views converging at the publish
// stable point even though the annotation messages raced each other over
// a reordering network.
//
// Run with: go run ./examples/conference
package main

import (
	"fmt"
	"os"
	"time"

	"causalshare/internal/causal"
	"causalshare/internal/core"
	"causalshare/internal/group"
	"causalshare/internal/message"
	"causalshare/internal/obs"
	"causalshare/internal/shareddata"
	"causalshare/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "conference:", err)
		os.Exit(1)
	}
}

type site struct {
	id      string
	replica *core.Replica
	engine  *causal.OSend
	fe      *core.FrontEnd
}

func run() error {
	participants := []string{"amy", "bob", "caro"}
	grp, err := group.New("design-review", participants)
	if err != nil {
		return err
	}
	net := transport.NewChanNet(transport.FaultModel{MaxDelay: 5 * time.Millisecond, Seed: 3})
	defer func() { _ = net.Close() }()

	sites := make(map[string]*site)
	defer func() {
		for _, s := range sites {
			_ = s.engine.Close()
		}
	}()
	for _, id := range participants {
		rep, err := core.NewReplica(core.ReplicaConfig{
			Self:    id,
			Initial: shareddata.NewDocument(),
			Apply:   shareddata.ApplyDocument,
		})
		if err != nil {
			return err
		}
		conn, err := net.Attach(id)
		if err != nil {
			return err
		}
		st := &site{id: id, replica: rep}
		// Each participant's front-end observes everything its site
		// delivers, so cycles weave across participants.
		eng, err := causal.NewOSend(causal.OSendConfig{
			Self: id, Group: grp, Conn: conn,
			Deliver: func(m message.Message) {
				st.fe.Observe(m)
				rep.Deliver(m)
			},
		})
		if err != nil {
			return err
		}
		st.engine = eng
		fe, err := core.NewFrontEnd("ui", eng)
		if err != nil {
			return err
		}
		st.fe = fe
		sites[id] = st
	}

	// Amy drafts the introduction (non-commutative edit: a sync point).
	edit := shareddata.Edit("intro", "Causal broadcasting ties message order to data consistency.")
	if _, err := sites["amy"].fe.Submit(edit.Op, edit.Kind, edit.Body); err != nil {
		return err
	}
	time.Sleep(30 * time.Millisecond) // let the edit reach every site

	// Everyone annotates concurrently — commutative, any arrival order.
	notes := map[string]string{
		"amy":  "tighten the first sentence",
		"bob":  "cite the ISIS paper here",
		"caro": "define 'stable point' on first use",
	}
	for who, note := range notes {
		a := shareddata.Annotate("intro", note)
		if _, err := sites[who].fe.Submit(a.Op, a.Kind, a.Body); err != nil {
			return err
		}
	}

	// Bob publishes revision 1 — the stable point that synchronizes all
	// annotation views. He publishes only after his site has seen every
	// annotation: the closing message's OccursAfter must name the whole
	// commutative set, or the "stable point" would not be stable (§6.1).
	for sites["bob"].replica.Applied() < 4 {
		time.Sleep(time.Millisecond)
	}
	pub := shareddata.Publish()
	if _, err := sites["bob"].fe.Submit(pub.Op, pub.Kind, pub.Body); err != nil {
		return err
	}

	// Wait for convergence, then audit.
	deadline := time.Now().Add(10 * time.Second)
	for {
		done := true
		for _, s := range sites {
			if s.replica.Applied() < 5 {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("sites did not converge")
		}
		time.Sleep(time.Millisecond)
	}

	histories := make(map[string][]core.StablePoint)
	for id, s := range sites {
		histories[id] = s.replica.StablePoints()
	}
	audit := obs.AuditStablePoints(histories)
	fmt.Printf("stable points: %d, all sites agree: %v\n", audit.Points, audit.Consistent())

	for _, id := range participants {
		st, cycle := sites[id].replica.ReadStable()
		doc, ok := st.(*shareddata.Document)
		if !ok {
			return fmt.Errorf("unexpected state type %T", st)
		}
		fmt.Printf("%s's view at stable point %d (revision %d):\n", id, cycle, doc.Revision())
		text, _ := doc.Section("intro")
		fmt.Printf("  intro: %q\n", text)
		for _, note := range doc.Notes("intro") {
			fmt.Printf("  note: %s\n", note)
		}
	}
	fmt.Println("annotations raced over the network, yet every site shows the identical annotated document at the publish point")
	return nil
}
