// Fileservice: the paper's opening example — "a distributed file service
// may be implemented by a group of servers, with each server maintaining
// a local copy of files and exchanging messages with other servers to
// update the various file copies in response to client requests."
//
// Writes to the same file must be ordered; writes to different files
// affect disjoint subsets of the shared data and are concurrent (§5.1).
// The item-scoped front-end expresses exactly that: same-file writes
// chain by OccursAfter, cross-file writes race freely, and a snapshot
// Sync closes the activity so every server agrees on all file contents.
//
// Run with: go run ./examples/fileservice
package main

import (
	"fmt"
	"os"
	"time"

	"causalshare/internal/causal"
	"causalshare/internal/core"
	"causalshare/internal/group"
	"causalshare/internal/shareddata"
	"causalshare/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fileservice:", err)
		os.Exit(1)
	}
}

func run() error {
	servers := []string{"fs1", "fs2", "fs3"}
	grp, err := group.New("files", servers)
	if err != nil {
		return err
	}
	// Heavy jitter: cross-file writes will arrive in wildly different
	// orders at the three servers.
	net := transport.NewChanNet(transport.FaultModel{MaxDelay: 6 * time.Millisecond, Seed: 9})
	defer func() { _ = net.Close() }()

	replicas := make(map[string]*core.Replica)
	var engines []*causal.OSend
	defer func() {
		for _, e := range engines {
			_ = e.Close()
		}
	}()
	for _, id := range servers {
		rep, err := core.NewReplica(core.ReplicaConfig{
			Self:    id,
			Initial: shareddata.NewKVStore(),
			Apply:   shareddata.ApplyKV,
		})
		if err != nil {
			return err
		}
		conn, err := net.Attach(id)
		if err != nil {
			return err
		}
		eng, err := causal.NewOSend(causal.OSendConfig{
			Self: id, Group: grp, Conn: conn, Deliver: rep.Deliver,
		})
		if err != nil {
			return err
		}
		replicas[id] = rep
		engines = append(engines, eng)
	}

	// One client writes three revisions of each of three files. Per-file
	// order matters (rev3 must win); cross-file order does not.
	fe, err := core.NewItemFrontEnd("editor", engines[0])
	if err != nil {
		return err
	}
	files := []string{"README", "Makefile", "main.go"}
	total := uint64(0)
	for rev := 1; rev <= 3; rev++ {
		for _, file := range files {
			op := shareddata.Put(file, fmt.Sprintf("%s@rev%d", file, rev))
			if _, err := fe.SubmitScoped(op.Op, file, op.Body); err != nil {
				return err
			}
			total++
		}
	}
	if _, err := fe.Sync("snapshot", nil); err != nil {
		return err
	}
	total++

	deadline := time.Now().Add(10 * time.Second)
	for {
		done := true
		for _, rep := range replicas {
			if rep.Applied() < total {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("servers did not converge")
		}
		time.Sleep(time.Millisecond)
	}

	for _, id := range servers {
		st, cycle := replicas[id].ReadStable()
		kv, ok := st.(*shareddata.KVStore)
		if !ok {
			return fmt.Errorf("unexpected state type %T", st)
		}
		fmt.Printf("server %s at snapshot %d:\n", id, cycle)
		for _, file := range files {
			content, _ := kv.Str(file)
			fmt.Printf("  %-8s -> %s\n", file, content)
		}
		if len(replicas[id].StablePoints()) != 1 {
			return fmt.Errorf("server %s saw %d stable points, want 1 (only the snapshot closes)",
				id, len(replicas[id].StablePoints()))
		}
	}
	fmt.Println("nine cross-file writes ran concurrently (no per-write ordering rounds); per-file order held and all servers agree at the snapshot")
	return nil
}
