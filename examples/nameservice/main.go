// Nameservice: the paper's §5.2 loosely coupled name service. Resolutions
// (qry) and registrations (upd) are generated spontaneously — no causal
// relations are declared — so replicas may interleave them differently.
// Each query carries context (the update count its issuing site had
// seen); a replica whose update count disagrees marks the result
// inconsistent so the application discards it, exactly the paper's
// application-specific consistency check.
//
// The example engineers the paper's own scenario: two queries race a
// second update. At the site where upd2 overtakes a query issued before
// it, the context disagrees and that query is discarded; sites that
// processed in issue order answer it.
//
// Run with: go run ./examples/nameservice
package main

import (
	"fmt"
	"os"
	"time"

	"causalshare/internal/causal"
	"causalshare/internal/core"
	"causalshare/internal/group"
	"causalshare/internal/message"
	"causalshare/internal/shareddata"
	"causalshare/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nameservice:", err)
		os.Exit(1)
	}
}

func run() error {
	servers := []string{"ns1", "ns2"}
	grp, err := group.New("names", servers)
	if err != nil {
		return err
	}
	// A perfect network: we inject the racy interleaving explicitly by
	// delivering messages to local replicas in different orders.
	net := transport.NewChanNet(transport.FaultModel{})
	defer func() { _ = net.Close() }()

	replicas := make(map[string]*core.Replica)
	engines := make(map[string]*causal.OSend)
	defer func() {
		for _, e := range engines {
			_ = e.Close()
		}
	}()
	for _, id := range servers {
		rep, err := core.NewReplica(core.ReplicaConfig{
			Self:    id,
			Initial: shareddata.NewRegistry(),
			Apply:   shareddata.ApplyRegistry,
		})
		if err != nil {
			return err
		}
		conn, err := net.Attach(id)
		if err != nil {
			return err
		}
		eng, err := causal.NewOSend(causal.OSendConfig{
			Self: id, Group: grp, Conn: conn, Deliver: rep.Deliver,
		})
		if err != nil {
			return err
		}
		replicas[id] = rep
		engines[id] = eng
	}

	// Spontaneous operations: each is broadcast with OccursAfter(NULL) —
	// no causal constraints, exactly the loose §5.2 regime. upd1 from
	// ns1; then, concurrently, queries from both sites and upd2.
	send := func(from string, seq uint64, op shareddata.RegistryOp) (message.Label, error) {
		label := message.Label{Origin: from, Seq: seq}
		m := message.Message{Label: label, Kind: op.Kind, Op: op.Op, Body: op.Body}
		return label, engines[from].Broadcast(m)
	}

	// upd1 binds printer -> hallway. Both sites see it.
	if _, err := send("ns1", 1, shareddata.Upd("printer", "hallway")); err != nil {
		return err
	}
	waitApplied(replicas, 1)

	// Both queries are issued having seen exactly 1 update (context = 1).
	qry1, err := coreQuery(engines, "ns1", 2, replicas["ns1"])
	if err != nil {
		return err
	}
	// upd2 races with qry2: ns2's copy processes upd2 first.
	if _, err := send("ns2", 1, shareddata.Upd("printer", "basement")); err != nil {
		return err
	}
	waitApplied(replicas, 3)
	qry2, err := coreQuery(engines, "ns1", 3, replicas["ns1"]) // context may now be stale at some site
	if err != nil {
		return err
	}
	waitApplied(replicas, 4)

	for _, id := range servers {
		st := replicas[id].ReadNow()
		reg, ok := st.(*shareddata.Registry)
		if !ok {
			return fmt.Errorf("unexpected state type %T", st)
		}
		fmt.Printf("server %s: printer -> %v, updates=%d, discarded=%d\n",
			id, lookup(reg, "printer"), reg.Updates(), reg.Discarded())
		for i, q := range []message.Label{qry1, qry2} {
			if res, ok := reg.Result(q); ok {
				status := fmt.Sprintf("answered %q", res.Value)
				if res.Discarded {
					status = "DISCARDED (context mismatch: updates intervened)"
				}
				fmt.Printf("  qry%d %v: %s\n", i+1, q, status)
			}
		}
	}
	fmt.Println("the context check lets servers detect exactly which query results an intervening update could have made inconsistent — no ordering protocol needed")
	return nil
}

// coreQuery issues a query whose context is the issuing site's current
// update count, as the §5.2 protocol prescribes.
func coreQuery(engines map[string]*causal.OSend, from string, seq uint64, local *core.Replica) (message.Label, error) {
	st := local.ReadNow()
	reg, ok := st.(*shareddata.Registry)
	if !ok {
		return message.Nil, fmt.Errorf("unexpected state type %T", st)
	}
	op := shareddata.Qry("printer", reg.Updates())
	label := message.Label{Origin: from, Seq: seq}
	m := message.Message{Label: label, Kind: op.Kind, Op: op.Op, Body: op.Body}
	return label, engines[from].Broadcast(m)
}

func waitApplied(replicas map[string]*core.Replica, want uint64) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, r := range replicas {
			if r.Applied() < want {
				done = false
			}
		}
		if done {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

func lookup(r *shareddata.Registry, name string) string {
	v, ok := r.Lookup(name)
	if !ok {
		return "<unbound>"
	}
	return v
}
