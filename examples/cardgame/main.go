// Cardgame: the paper's §5.1 multiplayer card game. Players share a
// common data space (the table) in a window system and play in a relaxed
// order: player l's action depends not on the immediately preceding
// player but on player k's card two seats back —
//
//	card_k -> card_l, with ||{card_(k+1) ... card_(l-1)}
//
// — so consecutive plays are concurrent and the broadcast layer may
// deliver them in different orders at different workstations, raising
// concurrency, while every declared dependency is still respected
// everywhere.
//
// Run with: go run ./examples/cardgame
package main

import (
	"fmt"
	"os"
	"time"

	"causalshare/internal/causal"
	"causalshare/internal/group"
	"causalshare/internal/message"
	"causalshare/internal/obs"
	"causalshare/internal/transport"
)

const lookback = 2 // player l waits for player l-2's card

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cardgame:", err)
		os.Exit(1)
	}
}

func run() error {
	players := []string{"north", "east", "south", "west"}
	grp, err := group.New("table", players)
	if err != nil {
		return err
	}
	net := transport.NewChanNet(transport.FaultModel{MaxDelay: 6 * time.Millisecond, Seed: 21})
	defer func() { _ = net.Close() }()

	trace := obs.NewTrace()
	engines := make(map[string]*causal.OSend)
	defer func() {
		for _, e := range engines {
			_ = e.Close()
		}
	}()
	for _, id := range players {
		conn, err := net.Attach(id)
		if err != nil {
			return err
		}
		eng, err := causal.NewOSend(causal.OSendConfig{
			Self: id, Group: grp, Conn: conn,
			Deliver:  trace.Observer(id, nil),
			Patience: 20 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		engines[id] = eng
	}

	// Two rounds of play. Play i (0-based) depends on play i-lookback.
	cards := []string{"7♠", "9♦", "Q♥", "2♣", "K♠", "3♦", "A♥", "J♣"}
	labels := make([]message.Label, len(cards))
	for i, card := range cards {
		player := players[i%len(players)]
		labels[i] = message.Label{Origin: player, Seq: uint64(i/len(players) + 1)}
		var deps message.OccursAfter
		if i-lookback >= 0 {
			deps = message.After(labels[i-lookback])
		}
		m := message.Message{
			Label: labels[i],
			Deps:  deps,
			Kind:  message.KindCommutative,
			Op:    "play",
			Body:  []byte(card),
		}
		if err := engines[player].Broadcast(m); err != nil {
			return err
		}
	}

	// Wait until every window shows all eight cards.
	deadline := time.Now().Add(10 * time.Second)
	for {
		done := true
		for _, id := range players {
			if len(trace.Sequence(id)) < len(cards) {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("windows did not converge")
		}
		time.Sleep(time.Millisecond)
	}

	if err := trace.VerifyAll(); err != nil {
		return fmt.Errorf("a window violated a declared dependency: %w", err)
	}
	divergent := false
	ref := trace.Sequence(players[0])
	for _, id := range players {
		seq := trace.Sequence(id)
		fmt.Printf("%s's window saw: ", id)
		for i, m := range seq {
			if i > 0 {
				fmt.Print(" ")
			}
			fmt.Print(string(m.Body))
			if m.Label != ref[i].Label {
				divergent = true
			}
		}
		fmt.Println()
	}
	g, err := trace.ExtractGraph()
	if err != nil {
		return err
	}
	fmt.Printf("dependency graph: %d plays, mean antichain width %.2f (1.00 would be strict turns)\n",
		g.Len(), g.MeanWidth())
	fmt.Printf("admissible schedules under the relaxed order: %d (strict turn-taking admits 1)\n",
		g.CountLinearizations(0))
	if divergent {
		fmt.Println("windows displayed different interleavings — allowed, because the relaxed order declares consecutive plays concurrent")
	} else {
		fmt.Println("windows happened to agree this run; rerun with another seed to see interleavings diverge")
	}
	fmt.Println("every declared dependency (card_k -> card_l) held at every window")
	return nil
}
