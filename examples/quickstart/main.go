// Quickstart: a replicated shared counter in ~60 lines.
//
// Three replicas keep copies of an integer. A client submits commutative
// increments/decrements and an occasional read through the front-end
// manager, which generates the paper's OccursAfter orderings. Replicas
// apply messages in causal order, detect stable points locally, and the
// deferred read returns the value every replica agrees on.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"causalshare/internal/causal"
	"causalshare/internal/core"
	"causalshare/internal/group"
	"causalshare/internal/shareddata"
	"causalshare/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. A group of three replicas over an in-process network that
	// reorders frames (0–4ms jitter), like a real LAN would.
	grp, err := group.New("counter", []string{"r1", "r2", "r3"})
	if err != nil {
		return err
	}
	net := transport.NewChanNet(transport.FaultModel{MaxDelay: 4 * time.Millisecond, Seed: 1})
	defer func() { _ = net.Close() }()

	// 2. Each replica: a counter state machine fed by a causal engine.
	replicas := make(map[string]*core.Replica)
	var engines []*causal.OSend
	defer func() {
		for _, e := range engines {
			_ = e.Close()
		}
	}()
	for _, id := range grp.Members() {
		rep, err := core.NewReplica(core.ReplicaConfig{
			Self:    id,
			Initial: shareddata.NewCounter(0),
			Apply:   shareddata.ApplyCounter,
		})
		if err != nil {
			return err
		}
		conn, err := net.Attach(id)
		if err != nil {
			return err
		}
		eng, err := causal.NewOSend(causal.OSendConfig{
			Self: id, Group: grp, Conn: conn, Deliver: rep.Deliver,
		})
		if err != nil {
			return err
		}
		replicas[id] = rep
		engines = append(engines, eng)
	}

	// 3. A client front-end co-located with r1 submits operations. inc
	// and dec are commutative — replicas may process them in any order —
	// and the read closes the activity, forming a stable point.
	fe, err := core.NewFrontEnd("alice", engines[0])
	if err != nil {
		return err
	}
	for i := 0; i < 10; i++ {
		op := shareddata.Inc()
		if i%3 == 2 {
			op = shareddata.Dec()
		}
		if _, err := fe.Submit(op.Op, op.Kind, op.Body); err != nil {
			return err
		}
	}
	rd := shareddata.Read()
	if _, err := fe.Submit(rd.Op, rd.Kind, rd.Body); err != nil {
		return err
	}

	// 4. Deferred reads at every replica return the same agreed value.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, id := range grp.Members() {
		st, cycle, err := replicas[id].ReadDeferred(ctx)
		if err != nil {
			return err
		}
		counter, ok := st.(*shareddata.Counter)
		if !ok {
			return fmt.Errorf("unexpected state type %T", st)
		}
		fmt.Printf("replica %s read %d at stable point %d\n", id, counter.V, cycle)
	}
	fmt.Println("7 increments - 3 decrements = 4, agreed everywhere with no agreement protocol")
	return nil
}
