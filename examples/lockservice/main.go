// Lockservice: a replicated bank ledger protected by the paper's §6.2
// decentralized lock arbitration. Three tellers at different sites update
// a shared account balance; each update requires the page lock, which
// rotates by totally ordered LOCK/TFR messages and a deterministic
// arbiter — no lock server anywhere. The final balance is identical at
// every site and equals the serial sum.
//
// Run with: go run ./examples/lockservice
package main

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"causalshare/internal/causal"
	"causalshare/internal/group"
	"causalshare/internal/lockarb"
	"causalshare/internal/message"
	"causalshare/internal/total"
	"causalshare/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lockservice:", err)
		os.Exit(1)
	}
}

type site struct {
	id      string
	arbiter *lockarb.Arbiter
	layer   *total.Sequencer
	engine  *causal.OSend

	mu      sync.Mutex
	balance int64
	applied int
}

// applyDeposit processes a totally ordered deposit at this site.
func (s *site) applyDeposit(amount int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.balance += amount
	s.applied++
}

func run() error {
	tellers := []string{"berlin", "madrid", "tokyo"}
	grp, err := group.New("ledger", tellers)
	if err != nil {
		return err
	}
	net := transport.NewChanNet(transport.FaultModel{MaxDelay: 2 * time.Millisecond, Seed: 5})
	defer func() { _ = net.Close() }()

	sites := make(map[string]*site)
	defer func() {
		for _, s := range sites {
			_ = s.layer.Close()
			_ = s.engine.Close()
		}
	}()
	for _, id := range tellers {
		st := &site{id: id}
		sq, err := total.NewSequencer(total.Config{
			Self: id, Group: grp,
			Deliver: func(m message.Message) {
				switch m.Op {
				case "deposit":
					var amount int64
					for _, b := range m.Body {
						amount = amount*10 + int64(b-'0')
					}
					st.applyDeposit(amount)
				default:
					st.arbiter.Ingest(m)
				}
			},
		})
		if err != nil {
			return err
		}
		conn, err := net.Attach(id)
		if err != nil {
			return err
		}
		eng, err := causal.NewOSend(causal.OSendConfig{
			Self: id, Group: grp, Conn: conn, Deliver: sq.Ingest,
		})
		if err != nil {
			return err
		}
		sq.Bind(eng)
		arb, err := lockarb.NewArbiter(lockarb.Config{Self: id, Group: grp, Layer: sq})
		if err != nil {
			return err
		}
		st.arbiter = arb
		st.layer = sq
		st.engine = eng
		sites[id] = st
	}
	for _, id := range tellers {
		if err := sites[id].arbiter.Start(); err != nil {
			return err
		}
	}

	// Each teller deposits three times, holding the page lock across the
	// read-modify-write (here a single ordered deposit message).
	deposits := map[string][]int64{
		"berlin": {100, 40, 7},
		"madrid": {250, 3, 90},
		"tokyo":  {11, 600, 25},
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(tellers))
	for _, id := range tellers {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for _, amount := range deposits[id] {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				cycle, err := sites[id].arbiter.Acquire(ctx)
				if err != nil {
					cancel()
					errs <- fmt.Errorf("%s: %w", id, err)
					return
				}
				if _, err := sites[id].layer.ASend("deposit", message.KindNonCommutative,
					[]byte(fmt.Sprintf("%d", amount)), message.Unconstrained()); err != nil {
					cancel()
					errs <- err
					return
				}
				fmt.Printf("  %s deposited %d under the page lock (cycle S%d)\n", id, amount, cycle)
				if err := sites[id].arbiter.Release(); err != nil {
					cancel()
					errs <- err
					return
				}
				cancel()
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}

	// Wait for every site to apply all nine deposits.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, s := range sites {
			s.mu.Lock()
			if s.applied < 9 {
				done = false
			}
			s.mu.Unlock()
		}
		if done {
			break
		}
		time.Sleep(time.Millisecond)
	}

	var want int64
	for _, ds := range deposits {
		for _, d := range ds {
			want += d
		}
	}
	allAgree := true
	for _, id := range tellers {
		s := sites[id]
		s.mu.Lock()
		fmt.Printf("site %s ledger balance: %d\n", id, s.balance)
		if s.balance != want {
			allAgree = false
		}
		s.mu.Unlock()
	}
	if allAgree {
		fmt.Printf("RESULT: every site holds the serial balance %d — mutual exclusion by decentralized arbitration, no lock server\n", want)
	}
	return nil
}
