module causalshare

go 1.22
