// Failover variants of the figure scenarios: the same end-to-end
// reproductions as figures_test.go, but with sequencer failover armed and
// the epoch-0 leader crashed in the middle of the activity. Each test
// checks that the paper's guarantee survives the succession: every member
// still sees every access, stable points still agree, the total order is
// still identical at all survivors. The exhaustive crash/rejoin coverage
// lives in internal/chaos and internal/sim; these pin the user-visible
// figure semantics specifically.
package causalshare_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"causalshare/internal/causal"
	"causalshare/internal/consistency"
	"causalshare/internal/core"
	"causalshare/internal/group"
	"causalshare/internal/message"
	"causalshare/internal/obs"
	"causalshare/internal/shareddata"
	"causalshare/internal/telemetry"
	"causalshare/internal/total"
	"causalshare/internal/trace"
	"causalshare/internal/transport"
)

const (
	foFailTimeout = 50 * time.Millisecond
	foStep        = 2 * time.Millisecond
)

type foMember struct {
	id    string
	seq   *total.Sequencer
	eng   *causal.OSend
	rep   *core.Replica
	alive bool

	mu    sync.Mutex
	order []string
}

func (m *foMember) deliver(msg message.Message) {
	m.mu.Lock()
	m.order = append(m.order, msg.Op+":"+string(msg.Body))
	m.mu.Unlock()
	if m.rep != nil {
		m.rep.Deliver(msg)
	}
}

func (m *foMember) orderSnapshot() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.order...)
}

type foStack struct {
	t       *testing.T
	net     *transport.ChanNet
	reg     *telemetry.Registry
	audit   *trace.Collector
	hist    *consistency.Recorder
	members []*foMember
	byID    map[string]*foMember
}

// newFailoverStack brings up the full live stack (replica over sequencer
// over causal broadcast over ChanNet) with failover armed. Heartbeats and
// detector ticks are pumped by the test driver, not a background ticker,
// so the crash point is deterministic relative to the workload.
func newFailoverStack(t *testing.T, ids []string, seed int64, withReplica bool) *foStack {
	t.Helper()
	hist := consistency.NewDeclaredRecorder()
	st := &foStack{
		t:     t,
		net:   transport.NewChanNet(transport.FaultModel{MaxDelay: 2 * time.Millisecond, Seed: seed}),
		reg:   telemetry.NewRegistry(),
		audit: trace.NewCollector(trace.Config{Observer: hist}),
		hist:  hist,
		byID:  map[string]*foMember{},
	}
	grp := group.MustNew("fig-failover", ids)
	for _, id := range ids {
		mb := &foMember{id: id, alive: true}
		spans := st.audit.Tracer(id)
		if withReplica {
			rep, err := core.NewReplica(core.ReplicaConfig{
				Self: id, Initial: shareddata.NewCounter(0), Apply: shareddata.ApplyCounter,
				Tracer: spans,
			})
			if err != nil {
				t.Fatal(err)
			}
			mb.rep = rep
		}
		sq, err := total.NewSequencer(total.Config{
			Self: id, Group: grp,
			Deliver:     mb.deliver,
			FailTimeout: foFailTimeout,
			Telemetry:   st.reg,
			Tracer:      spans,
		})
		if err != nil {
			t.Fatal(err)
		}
		conn, err := st.net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := causal.NewOSend(causal.OSendConfig{
			Self: id, Group: grp, Conn: conn,
			Deliver: sq.Ingest, Patience: 10 * time.Millisecond,
			Tracer: spans,
		})
		if err != nil {
			t.Fatal(err)
		}
		sq.Bind(eng)
		mb.seq = sq
		mb.eng = eng
		st.members = append(st.members, mb)
		st.byID[id] = mb
	}
	t.Cleanup(func() {
		for _, mb := range st.members {
			_ = mb.seq.Close()
			_ = mb.eng.Close()
		}
		_ = st.net.Close()
		if n := st.audit.ViolationCount(); n != 0 {
			t.Errorf("online trace audit caught %d violations: %v", n, st.audit.Violations())
		}
		rep, err := consistency.Check(st.hist.History())
		if err != nil {
			t.Errorf("offline consistency check: %v", err)
		} else if !rep.AllHold() {
			t.Errorf("offline consistency check over %d recorded ops: %s", rep.Ops, rep)
		}
	})
	return st
}

// crash freezes a member exactly as the chaos harness does: isolate it at
// the transport and stop pumping it.
func (s *foStack) crash(id string) {
	s.net.Isolate(id)
	s.byID[id].alive = false
}

// pumpUntil drives heartbeats and detector ticks on the live members at
// Step granularity until cond holds or the deadline passes.
func (s *foStack) pumpUntil(timeout time.Duration, cond func() bool) bool {
	s.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		now := time.Now()
		for _, mb := range s.members {
			if !mb.alive {
				continue
			}
			_ = mb.seq.Heartbeat()
			mb.seq.Tick(now)
		}
		time.Sleep(foStep)
	}
}

// survivorsElected reports whether every live member moved past epoch 0.
func (s *foStack) survivorsElected() bool {
	for _, mb := range s.members {
		if mb.alive && mb.seq.Epoch() == 0 {
			return false
		}
	}
	return true
}

// TestFigure1FailoverScenario replays Figure 1 across a leader crash:
// entities share a counter through broadcast data-access messages; the
// sequencer (epoch-0 leader e1) dies halfway through the access stream
// issued by a surviving entity, and the survivors must still each see
// every access and agree on the value.
func TestFigure1FailoverScenario(t *testing.T) {
	ids := []string{"e1", "e2", "e3"}
	st := newFailoverStack(t, ids, 61, true)
	submitter := st.byID["e2"]

	submit := func(n int) {
		for i := 0; i < n; i++ {
			op := shareddata.Inc()
			if _, err := submitter.seq.ASend(op.Op, op.Kind, op.Body, message.After()); err != nil {
				t.Fatal(err)
			}
		}
	}
	applied := func(want uint64) func() bool {
		return func() bool {
			for _, mb := range st.members {
				if mb.alive && mb.rep.Applied() < want {
					return false
				}
			}
			return true
		}
	}

	submit(3)
	if !st.pumpUntil(5*time.Second, applied(3)) {
		t.Fatal("pre-crash accesses never reached all entities")
	}
	st.crash("e1") // the epoch-0 sequencer
	submit(3)
	rd := shareddata.Read()
	if _, err := submitter.seq.ASend(rd.Op, rd.Kind, rd.Body, message.After()); err != nil {
		t.Fatal(err)
	}
	if !st.pumpUntil(10*time.Second, applied(7)) {
		t.Fatal("entities did not converge after the leader crash")
	}
	if !st.survivorsElected() {
		t.Fatal("survivors still on epoch 0")
	}
	ref, _ := st.byID["e2"].rep.ReadStable()
	if ref.Digest() != shareddata.NewCounter(6).Digest() {
		t.Errorf("VAL %s, want counter:6", ref.Digest())
	}
	st3, _ := st.byID["e3"].rep.ReadStable()
	if st3.Digest() != ref.Digest() {
		t.Errorf("entity e3 VAL %s, want %s", st3.Digest(), ref.Digest())
	}
}

// TestFigure2FailoverDiamond replays Figure 2's computation R(M) with the
// leader crashing between the opening write and the concurrent middle:
// mk -> CRASH(leader) -> ||{mi', mj'} -> mj''. The survivors must reach
// the synchronization point and share the view there, exactly as in the
// fault-free figure.
func TestFigure2FailoverDiamond(t *testing.T) {
	ids := []string{"ai", "aj", "ak"}
	st := newFailoverStack(t, ids, 67, true)

	set := shareddata.Set(10)
	lk, err := st.byID["ak"].seq.ASend(set.Op, set.Kind, set.Body, message.After())
	if err != nil {
		t.Fatal(err)
	}
	if !st.pumpUntil(5*time.Second, func() bool {
		for _, mb := range st.members {
			if mb.alive && mb.rep.Applied() < 1 {
				return false
			}
		}
		return true
	}) {
		t.Fatal("opening write never delivered")
	}

	st.crash("ai") // epoch-0 leader dies before the concurrent middle
	inc, dec := shareddata.Inc(), shareddata.Dec()
	li, err := st.byID["aj"].seq.ASend(inc.Op, inc.Kind, inc.Body, message.After(lk))
	if err != nil {
		t.Fatal(err)
	}
	lj, err := st.byID["ak"].seq.ASend(dec.Op, dec.Kind, dec.Body, message.After(lk))
	if err != nil {
		t.Fatal(err)
	}
	rd := shareddata.Read()
	if _, err := st.byID["aj"].seq.ASend(rd.Op, rd.Kind, rd.Body, message.After(li, lj)); err != nil {
		t.Fatal(err)
	}

	if !st.pumpUntil(10*time.Second, func() bool {
		for _, mb := range st.members {
			if mb.alive && mb.rep.Cycle() < 2 {
				return false
			}
		}
		return true
	}) {
		t.Fatal("sync point never reached after the leader crash")
	}
	histories := map[string][]core.StablePoint{}
	for _, mb := range st.members {
		if mb.alive {
			histories[mb.id] = mb.rep.StablePoints()
		}
	}
	audit := obs.AuditStablePoints(histories)
	if !audit.Consistent() || audit.Points < 2 {
		t.Fatalf("audit = %+v", audit)
	}
	val, _ := st.byID["aj"].rep.ReadStable()
	if val.Digest() != shareddata.NewCounter(10).Digest() {
		t.Errorf("agreed value %s, want counter:10", val.Digest())
	}
}

// TestFigure4FailoverTotalOrder replays Figure 4 with the ordering
// function's host crashing mid-stream: spontaneous messages race from
// every member, the leader dies after the first rounds, and the
// interposed layer must keep ordering the rest identically at the
// survivors under the successor epoch.
func TestFigure4FailoverTotalOrder(t *testing.T) {
	ids := []string{"a", "b", "c"}
	st := newFailoverStack(t, ids, 71, false)

	send := func(id string, i int) {
		op := fmt.Sprintf("spont-%s-%d", id, i)
		if _, err := st.byID[id].seq.ASend(op, message.KindNonCommutative, nil, message.Unconstrained()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		for _, id := range ids {
			send(id, i)
		}
	}
	if !st.pumpUntil(5*time.Second, func() bool {
		for _, mb := range st.members {
			if len(mb.orderSnapshot()) < 6 {
				return false
			}
		}
		return true
	}) {
		t.Fatal("pre-crash rounds never ordered")
	}
	st.crash("a")
	for i := 2; i < 5; i++ {
		for _, id := range ids[1:] {
			send(id, i)
		}
	}
	if !st.pumpUntil(10*time.Second, func() bool {
		for _, mb := range st.members[1:] {
			if len(mb.orderSnapshot()) < 12 {
				return false
			}
		}
		return true
	}) {
		t.Fatal("post-crash spontaneous messages never ordered")
	}
	if !st.survivorsElected() {
		t.Fatal("survivors still on epoch 0")
	}
	if got := st.reg.Snapshot().Get("total_elections_total"); got == 0 {
		t.Fatal("no election recorded in telemetry")
	}
	// Identical total order at the survivors, at full length.
	refOrder := st.byID["b"].orderSnapshot()
	gotOrder := st.byID["c"].orderSnapshot()
	if len(refOrder) != len(gotOrder) {
		t.Fatalf("survivors delivered %d vs %d", len(refOrder), len(gotOrder))
	}
	for i := range refOrder {
		if refOrder[i] != gotOrder[i] {
			t.Fatalf("survivor orders diverge at %d: %s vs %s", i, refOrder[i], gotOrder[i])
		}
	}
	if st.byID["b"].seq.Epoch() != st.byID["c"].seq.Epoch() {
		t.Fatal("survivors disagree on the epoch")
	}
}

// TestFigure5FailoverDigests is the digest variant of Figure 5: instead of
// the LOCK/TFR cycle, every member races order-sensitive writes (the
// primitive the arbitration protocol is built on) while the leader
// crashes. Identical final digests at the survivors prove they applied
// the racing non-commutative writes in one agreed order — the property
// that makes the Figure 5 arbitration sound across a succession.
func TestFigure5FailoverDigests(t *testing.T) {
	ids := []string{"A", "B", "C"}
	st := newFailoverStack(t, ids, 73, true)

	round := func(members []string, base int64) {
		for j, id := range members {
			op := shareddata.Set(base + int64(j))
			if _, err := st.byID[id].seq.ASend(op.Op, op.Kind, op.Body, message.After()); err != nil {
				t.Fatal(err)
			}
		}
	}
	applied := func(want uint64) func() bool {
		return func() bool {
			for _, mb := range st.members {
				if mb.alive && mb.rep.Applied() < want {
					return false
				}
			}
			return true
		}
	}
	round(ids, 100)
	if !st.pumpUntil(5*time.Second, applied(3)) {
		t.Fatal("pre-crash writes never applied")
	}
	st.crash("A")
	round(ids[1:], 200)
	round(ids[1:], 300)
	if !st.pumpUntil(10*time.Second, applied(7)) {
		t.Fatal("post-crash writes never applied at the survivors")
	}
	if !st.survivorsElected() {
		t.Fatal("survivors still on epoch 0")
	}
	refState, refCycle := st.byID["B"].rep.ReadStable()
	gotState, gotCycle := st.byID["C"].rep.ReadStable()
	if refCycle != gotCycle {
		t.Fatalf("stable cycles diverge: %d vs %d", refCycle, gotCycle)
	}
	if refState.Digest() != gotState.Digest() {
		t.Fatalf("survivor digests diverge: %s vs %s", refState.Digest(), gotState.Digest())
	}
	// And the digest history agrees position-for-position, not just at the
	// end: racing writes are order-sensitive, so this is the total order.
	histories := map[string][]core.StablePoint{}
	for _, mb := range st.members[1:] {
		histories[mb.id] = mb.rep.StablePoints()
	}
	audit := obs.AuditStablePoints(histories)
	if !audit.Consistent() {
		t.Fatalf("stable-point audit = %+v", audit)
	}
}
