// Restart figure: the durability story at figure level, on the raw
// causal engine. A member crashes mid-activity; the group keeps going
// and — as the paper's stability rule prescribes — prunes every message
// all members (the crashed one's frozen watermark included) are known
// to have delivered. The member then comes back two ways:
//
//   - restart-from-disk: its write-ahead log replays the delivered
//     frontier, so it seeds the prefix locally and fetches ONLY the
//     suffix the group produced while it was down;
//   - peer-only rejoin (no local log): its sole source of state is peer
//     anti-entropy, which can serve the retained suffix but not the
//     pruned prefix — the rejoiner burns fetch after fetch on history
//     nobody holds anymore, and its frontier never completes.
//
// The figure pins both user-visible properties: the disk restart
// reaches a byte-identical frontier digest with strictly fewer
// anti-entropy fetches than the peer-only rejoin spends failing. (The
// live-stack rejoin path sidesteps the pruned-prefix wedge by donating
// a sequencer snapshot — internal/chaos covers that; this figure shows
// what the local log buys below it.) Exhaustive crash-point/disk-fault
// coverage lives in internal/wal and internal/chaos.
package causalshare_test

import (
	"testing"
	"time"

	"causalshare/internal/causal"
	"causalshare/internal/group"
	"causalshare/internal/message"
	"causalshare/internal/telemetry"
	"causalshare/internal/transport"
	"causalshare/internal/wal"
)

const (
	restartPrefix   = 60 // per-origin messages delivered (and journaled) before the crash
	restartSuffix   = 12 // per-origin messages broadcast while the member is down
	restartPatience = 10 * time.Millisecond
	restartWait     = 10 * time.Second
)

func restartWaitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(restartWait)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func restartCounter(reg *telemetry.Registry, name string) uint64 {
	var n uint64
	for _, c := range reg.Snapshot().Counters {
		if c.Name == name {
			n += c.Value
		}
	}
	return n
}

func restartGauge(reg *telemetry.Registry, name string) (int64, bool) {
	for _, g := range reg.Snapshot().Gauges {
		if g.Name == name {
			return g.Value, true
		}
	}
	return 0, false
}

// runRestartFigure drives one crash-and-comeback scenario and returns
// the restarted member's post-restart fetch count plus whether its
// frontier caught the group's. fromDisk selects the comeback path; for
// the peer-only path, fetchBudget is the disk path's fetch total — the
// run ends once the rejoiner has burned strictly more than that.
func runRestartFigure(t *testing.T, fromDisk bool, fetchBudget uint64) (fetches uint64, caughtUp bool) {
	t.Helper()
	ids := []string{"a", "b", "c"}
	grp := group.MustNew("restart", ids)
	net := transport.NewChanNet(transport.FaultModel{MaxDelay: time.Millisecond, Seed: 7})
	defer func() { _ = net.Close() }()

	regs := make(map[string]*telemetry.Registry, len(ids))
	engines := make(map[string]*causal.OSend, len(ids))
	spawn := func(id string, reg *telemetry.Registry, journal *wal.WAL) *causal.OSend {
		conn, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := causal.NewOSend(causal.OSendConfig{
			Self: id, Group: grp, Conn: conn,
			Deliver:   func(message.Message) {},
			Patience:  restartPatience,
			Telemetry: reg,
			Journal:   journal,
		})
		if err != nil {
			t.Fatal(err)
		}
		regs[id], engines[id] = reg, eng
		return eng
	}

	// Member c journals with per-record fsync: the log holds every
	// delivery the instant it happens, so a crash loses nothing.
	fs := wal.NewMemFS(3, wal.Faults{})
	wlog, err := wal.Open(wal.Options{Dir: "/wal", FS: fs, Policy: wal.PolicyEach})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		var j *wal.WAL
		if id == "c" {
			j = wlog
		}
		spawn(id, telemetry.NewRegistry(), j)
	}
	defer func() {
		for _, e := range engines {
			_ = e.Close()
		}
	}()

	labs := map[string]*message.Labeler{"a": message.NewLabeler("a"), "b": message.NewLabeler("b")}
	send := func(origin string, count int) {
		for i := 0; i < count; i++ {
			m := message.Message{Label: labs[origin].Next(), Kind: message.KindCommutative, Op: "inc"}
			if err := engines[origin].Broadcast(m); err != nil {
				t.Fatal(err)
			}
		}
	}
	atFrontier := func(id string, want uint64) bool {
		wm := engines[id].Frontier()
		return wm["a"] == want && wm["b"] == want
	}

	// Phase 1: everyone delivers the prefix, then adverts circulate and
	// the stability rule garbage-collects it everywhere (retained depth
	// drains to zero — c's advertised watermark covers the prefix, so
	// every copy is provably redundant).
	send("a", restartPrefix)
	send("b", restartPrefix)
	for _, id := range ids {
		restartWaitUntil(t, id+" delivers the prefix", func() bool { return atFrontier(id, restartPrefix) })
	}
	for _, id := range []string{"a", "b"} {
		id := id
		restartWaitUntil(t, id+" prunes the prefix", func() bool {
			v, ok := restartGauge(regs[id], "causal_osend_retained_depth")
			return ok && v == 0
		})
	}

	// Crash c: the process dies (the log seals at the crash instant) and
	// the group moves on. The suffix stays retained at the survivors —
	// c's frozen watermark does not cover it, and c was never declared
	// down — exactly the anti-entropy window a rejoiner may lean on.
	wlog.Kill()
	_ = engines["c"].Close()
	send("a", restartSuffix)
	send("b", restartSuffix)
	for _, id := range []string{"a", "b"} {
		id := id
		restartWaitUntil(t, id+" delivers the suffix", func() bool {
			return atFrontier(id, restartPrefix+restartSuffix)
		})
	}

	// Comeback. A fresh registry isolates post-restart fetch counts.
	reg2 := telemetry.NewRegistry()
	if fromDisk {
		rec, w2, err := wal.Recover(wal.Options{Dir: "/wal", FS: fs, Policy: wal.PolicyEach, Telemetry: reg2})
		if err != nil {
			t.Fatal(err)
		}
		if rec.Frontier["a"] != restartPrefix || rec.Frontier["b"] != restartPrefix {
			t.Fatalf("recovered frontier %v, want both origins at %d", rec.Frontier, restartPrefix)
		}
		eng := spawn("c", reg2, w2)
		eng.SeedFrontier(rec.Frontier)
		if err := eng.RequestSync(); err != nil {
			t.Fatal(err)
		}
		restartWaitUntil(t, "disk-restarted c catches the group frontier", func() bool {
			return atFrontier("c", restartPrefix+restartSuffix)
		})
		caughtUp = true
	} else {
		eng := spawn("c", reg2, nil)
		if err := eng.RequestSync(); err != nil {
			t.Fatal(err)
		}
		restartWaitUntil(t, "peer-only c exceeds the disk path's fetch budget", func() bool {
			return restartCounter(reg2, "causal_osend_fetches_total") > fetchBudget
		})
		caughtUp = atFrontier("c", restartPrefix+restartSuffix)
	}
	fetches = restartCounter(reg2, "causal_osend_fetches_total")

	// Byte-identical frontier digests across the whole group — required
	// after a disk restart, provably unreachable for the peer-only path.
	if caughtUp {
		ref := wal.FrontierDigest(engines["a"].Frontier())
		for _, id := range []string{"b", "c"} {
			if d := wal.FrontierDigest(engines[id].Frontier()); d != ref {
				t.Fatalf("frontier digest diverges: a=%x %s=%x", ref, id, d)
			}
		}
	}
	return fetches, caughtUp
}

// TestFigureRestartFromDisk is the figure. The disk path must rejoin
// the group's exact causal frontier (byte-identical digest at every
// member) fetching no more than the suffix plus advert-cadence retries;
// the peer-only path must still be incomplete after burning strictly
// more fetches than the disk path needed in total, because the prefix
// it keeps asking for was garbage-collected group-wide.
func TestFigureRestartFromDisk(t *testing.T) {
	diskFetches, caughtUp := runRestartFigure(t, true, 0)
	if !caughtUp {
		t.Fatal("disk restart did not catch up") // unreachable; guards the helper contract
	}
	if diskFetches == 0 {
		t.Fatal("disk restart fetched nothing: the suffix should arrive via anti-entropy")
	}
	peerFetches, peerCaughtUp := runRestartFigure(t, false, diskFetches)
	if peerCaughtUp {
		t.Fatalf("peer-only rejoin completed its frontier: the pruned prefix should be unrecoverable (fetches=%d)", peerFetches)
	}
	if peerFetches <= diskFetches {
		t.Fatalf("peer-only rejoin fetched %d <= disk restart's %d: want strictly more", peerFetches, diskFetches)
	}
	t.Logf("anti-entropy fetches: restart-from-disk=%d (complete), peer-only=%d (still incomplete)",
		diskFetches, peerFetches)
}

// TestFigureRestartDigestDeterministic pins the digest the disk restart
// must reproduce: FrontierDigest is a pure function of the frontier
// map, so the byte-identical comparison above is meaningful across
// processes, not just within one.
func TestFigureRestartDigestDeterministic(t *testing.T) {
	wm := map[string]uint64{"a": restartPrefix + restartSuffix, "b": restartPrefix + restartSuffix}
	if d1, d2 := wal.FrontierDigest(wm), wal.FrontierDigest(map[string]uint64{
		"b": restartPrefix + restartSuffix, "a": restartPrefix + restartSuffix,
	}); d1 != d2 {
		t.Fatalf("FrontierDigest is insertion-order sensitive: %x != %x", d1, d2)
	}
}
