package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"causalshare/internal/consistency"
)

// TestRoundTripFromRecordedChaosRun is the acceptance path: record a
// seeded chaos run on the live stack into a history file, then replay the
// file through -json -audit and require all three verdicts to hold.
func TestRoundTripFromRecordedChaosRun(t *testing.T) {
	f := filepath.Join(t.TempDir(), "chaos.json")
	if err := run([]string{
		"-record", f, "-seed", "7", "-n", "4", "-sends", "8",
		"-horizon", "150ms", "-actions", "1",
	}, io.Discard); err != nil {
		t.Fatalf("record: %v", err)
	}

	var buf bytes.Buffer
	if err := run([]string{"-json", "-audit", f}, &buf); err != nil {
		t.Fatalf("audit of a healthy recorded run failed: %v\n%s", err, buf.String())
	}
	var out struct {
		History string `json:"history"`
		Ops     int    `json:"ops"`
		CC      struct {
			Holds bool `json:"holds"`
		} `json:"cc"`
		CCv struct {
			Holds bool `json:"holds"`
		} `json:"ccv"`
		CM struct {
			Holds bool `json:"holds"`
		} `json:"cm"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("bad -json output: %v\n%s", err, buf.String())
	}
	if out.History != f || out.Ops == 0 {
		t.Fatalf("report did not round-trip the recorded run: %+v", out)
	}
	if !out.CC.Holds || !out.CCv.Holds || !out.CM.Holds {
		t.Fatalf("recorded chaos history fails: %s", buf.String())
	}
}

// writeHistory marshals h into a temp file and returns the path.
func writeHistory(t *testing.T, h *consistency.History) string {
	t.Helper()
	f := filepath.Join(t.TempDir(), "h.json")
	var buf bytes.Buffer
	if err := h.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(f, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestAuditExitOnViolation: a history with a causal-order violation must
// fail -audit, name the pattern in -json, and carry a counterexample.
func TestAuditExitOnViolation(t *testing.T) {
	h := &consistency.History{Sessions: []consistency.Session{
		{Member: "w", Ops: []consistency.Op{
			{Type: consistency.OpWrite, Var: "x", Val: 1},
			{Type: consistency.OpWrite, Var: "x", Val: 2},
		}},
		{Member: "r", Ops: []consistency.Op{
			{Type: consistency.OpRead, Var: "x", Val: 2},
			{Type: consistency.OpRead, Var: "x", Val: 1},
		}},
	}}
	f := writeHistory(t, h)

	var buf bytes.Buffer
	err := run([]string{"-json", "-audit", f}, &buf)
	if err == nil {
		t.Fatalf("-audit passed a violating history:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), consistency.PatternWriteCORead) {
		t.Fatalf("report does not name the pattern:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "counterexample") {
		t.Fatalf("report carries no counterexample:\n%s", buf.String())
	}

	// Without -audit the exit is clean: reporting, not gating.
	if err := run([]string{f}, io.Discard); err != nil {
		t.Fatalf("reporting run failed: %v", err)
	}
}

// TestLevelGate: -level narrows the audit to one rung of the lattice — a
// CCv-only violation passes -level cc and fails -level ccv.
func TestLevelGate(t *testing.T) {
	h := &consistency.History{Sessions: []consistency.Session{
		{Member: "w1", Ops: []consistency.Op{{Type: consistency.OpWrite, Var: "x", Val: 1}}},
		{Member: "w2", Ops: []consistency.Op{{Type: consistency.OpWrite, Var: "x", Val: 2}}},
		{Member: "r1", Ops: []consistency.Op{
			{Type: consistency.OpRead, Var: "x", Val: 1},
			{Type: consistency.OpRead, Var: "x", Val: 2},
		}},
		{Member: "r2", Ops: []consistency.Op{
			{Type: consistency.OpRead, Var: "x", Val: 2},
			{Type: consistency.OpRead, Var: "x", Val: 1},
		}},
	}}
	f := writeHistory(t, h)
	if err := run([]string{"-audit", "-level", "cc", f}, io.Discard); err != nil {
		t.Fatalf("fork history fails CC gate: %v", err)
	}
	if err := run([]string{"-audit", "-level", "ccv", f}, io.Discard); err == nil {
		t.Fatal("fork history passed CCv gate")
	}
}

// TestBadInput: missing files and malformed flags fail cleanly.
func TestBadInput(t *testing.T) {
	if err := run([]string{filepath.Join(t.TempDir(), "nope.json")}, io.Discard); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run([]string{"-level", "bogus", "x.json"}, io.Discard); err == nil {
		t.Fatal("bogus level accepted")
	}
	if err := run([]string{}, io.Discard); err == nil {
		t.Fatal("no arguments accepted")
	}
}
