// Command cccheck replays a recorded history file through the offline
// causal-consistency checker and renders the CC / CCv / CM verdicts —
// Bouajjani-style bad-pattern checking over the causalshare-history/v1
// format the consistency recorder writes. With -audit the process exits
// non-zero when the gated verdict (default: all three) fails, which is
// what CI gates on; with -json the full report (including the minimal
// counterexample) is machine-readable.
//
// It can also produce its own input: -record replays a seeded chaos
// schedule on the live stack with the history recorder attached and writes
// the recorded history to the given file before checking it, so
//
//	cccheck -record h.json -seed 7
//	cccheck -json -audit h.json
//
// is a complete record/verify round trip through the on-disk format.
//
// Usage:
//
//	cccheck [-json] [-audit] [-level all|cc|ccv|cm] history.json
//	cccheck -record history.json [-seed 7] [-n 4] [-sends 12]
//	        [-horizon 300ms] [-actions 2] [-json] [-audit]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"causalshare/internal/chaos"
	"causalshare/internal/consistency"
	"causalshare/internal/telemetry"
	"causalshare/internal/trace"
	"causalshare/internal/transport"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cccheck:", err)
		os.Exit(1)
	}
}

// output is the -json shape: the checker's report plus the human-readable
// minimal counterexample of the first failing verdict.
type output struct {
	History string `json:"history"`
	*consistency.Report
	Counterexample []string `json:"counterexample,omitempty"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cccheck", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit the verdict report as JSON")
	levelFlag := fs.String("level", "all", "verdict gating -audit: all, cc, ccv, or cm")
	audit := fs.Bool("audit", false, "exit non-zero when the gated verdict fails")
	record := fs.String("record", "", "replay a seeded chaos schedule and write its recorded history to this file, then check it")
	seed := fs.Int64("seed", 7, "chaos schedule seed (with -record)")
	n := fs.Int("n", 4, "group size, minimum 3 (with -record)")
	sends := fs.Int("sends", 12, "data messages per member (with -record)")
	horizon := fs.Duration("horizon", 300*time.Millisecond, "schedule horizon (with -record)")
	actions := fs.Int("actions", 2, "crash/recover actions in the schedule (with -record)")
	version := fs.Bool("version", false, "print the binary version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, telemetry.Version())
		return nil
	}
	var gate consistency.Level
	if *levelFlag != "all" {
		lv, err := consistency.ParseLevel(*levelFlag)
		if err != nil {
			return err
		}
		gate = lv
	}

	path := *record
	if path == "" {
		if fs.NArg() != 1 {
			return fmt.Errorf("want exactly one history file (or -record), got %d args", fs.NArg())
		}
		path = fs.Arg(0)
	} else if err := recordHistory(path, *seed, *n, *sends, *horizon, *actions); err != nil {
		return err
	}

	h, err := readHistory(path)
	if err != nil {
		return err
	}
	rep, err := consistency.Check(h)
	if err != nil {
		return err
	}

	counterexample := firstCounterexample(h, rep)
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(output{History: path, Report: rep, Counterexample: counterexample}); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(out, "%s: %s\n", path, rep)
		for _, line := range counterexample {
			fmt.Fprintf(out, "  %s\n", line)
		}
	}

	if *audit {
		if gate == 0 {
			if !rep.AllHold() {
				return fmt.Errorf("history fails: CC=%v CCv=%v CM=%v", rep.CC.Holds, rep.CCv.Holds, rep.CM.Holds)
			}
		} else if o := rep.Outcome(gate); !o.Holds {
			return fmt.Errorf("history fails %s: %s", gate, o.Detail)
		}
	}
	return nil
}

// readHistory loads a causalshare-history/v1 file ("-" reads stdin).
func readHistory(path string) (*consistency.History, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return consistency.ReadJSON(r)
}

// firstCounterexample renders the minimal witness of the first failing
// verdict, CC before CCv before CM.
func firstCounterexample(h *consistency.History, rep *consistency.Report) []string {
	for _, o := range []consistency.Outcome{rep.CC, rep.CCv, rep.CM} {
		if o.Holds || o.Undecided {
			continue
		}
		refs := o.Refs
		if len(refs) == 0 {
			refs = o.Cycle
		}
		return consistency.DescribeRefs(h, refs)
	}
	return nil
}

// recordHistory replays a seeded chaos schedule on the live stack (the
// same driver as `make chaos`) with the declared-dependency history
// recorder attached, and writes the materialized history to path.
func recordHistory(path string, seed int64, n, sends int, horizon time.Duration, actions int) error {
	if n < 3 {
		return fmt.Errorf("need at least 3 members, got %d", n)
	}
	members := make([]string, n)
	for i := range members {
		members[i] = fmt.Sprintf("m%02d", i)
	}
	net := transport.NewChanNet(transport.FaultModel{})
	defer func() { _ = net.Close() }()
	rec := consistency.NewDeclaredRecorder()
	res, err := chaos.Run(chaos.Options{
		Members:        members,
		Net:            net,
		Schedule:       chaos.RandomSchedule(seed, members, horizon, actions),
		SendsPerMember: sends,
		FailTimeout:    60 * time.Millisecond,
		Patience:       12 * time.Millisecond,
		Collector:      trace.NewCollector(trace.Config{}),
		Recorder:       rec,
	})
	if err != nil {
		return err
	}
	if !res.Converged {
		return fmt.Errorf("chaos run did not converge (seed %d)", seed)
	}
	var buf strings.Builder
	if err := rec.History().WriteJSON(&buf); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(buf.String()), 0o644)
}
