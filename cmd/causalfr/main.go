// Command causalfr is the post-mortem forensics tool for black-box flight
// recordings: it decodes N member dumps (the .fr files the chaos harness
// and telemetry endpoints write), merges them into one causally consistent
// cluster timeline — happened-before rebuilt from send→recv edges,
// per-member clock skew corrected, genuinely concurrent records marked —
// and renders the result for a human chasing a violation.
//
// The default render is the full merged timeline. With -around N the
// output focuses a ±window slice around the Nth auditor violation on the
// timeline, which is the workflow after a chaos run dumps boxes: find the
// violation, see exactly what every member was doing in the surrounding
// milliseconds. A delivery diff (expected vs actual per-member delivery
// order) runs over the whole timeline either way, naming each divergent
// message and the members that disagree about it.
//
// Usage:
//
//	causalfr [-around N] [-window 500ms] [-json] [-dot out.dot] <dump.fr ... | dir>
//	causalfr -version
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"causalshare/internal/flightrec"
	"causalshare/internal/telemetry"
	"causalshare/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "causalfr:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("causalfr", flag.ContinueOnError)
	around := fs.Int("around", -1, "focus the timeline on the Nth violation (0-based; -1 renders everything)")
	window := fs.Duration("window", 500*time.Millisecond, "half-width of the -around focus window")
	jsonOut := fs.Bool("json", false, "emit the merged timeline as JSON")
	dotOut := fs.String("dot", "", "write the rendered window as a DOT graph to this file (\"-\" for stdout)")
	version := fs.Bool("version", false, "print the binary version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, telemetry.Version())
		return nil
	}
	paths, err := collectDumps(fs.Args())
	if err != nil {
		return err
	}

	dumps := make([]*flightrec.Dump, 0, len(paths))
	for _, p := range paths {
		d, err := flightrec.ReadFile(p)
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		dumps = append(dumps, d)
	}
	tl := flightrec.Merge(dumps)
	diffs := tl.DeliveryDiffs()

	lo, hi, err := focus(tl, *around, *window)
	if err != nil {
		return err
	}

	if *dotOut != "" {
		w := out
		var f *os.File
		if *dotOut != "-" {
			if f, err = os.Create(*dotOut); err != nil {
				return err
			}
			w = f
		}
		writeDOT(w, tl, lo, hi)
		if f != nil {
			if err := f.Close(); err != nil {
				return err
			}
		}
	}

	if *jsonOut {
		return writeJSON(out, tl, diffs, lo, hi)
	}
	render(out, tl, diffs, *around, lo, hi)
	return nil
}

// collectDumps expands the positional args: each is either a .fr file or a
// directory whose *.fr entries are taken (sorted, so the merge input is
// deterministic regardless of shell glob order).
func collectDumps(args []string) ([]string, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("want flight dumps (.fr files or a directory of them)")
	}
	var paths []string
	for _, a := range args {
		st, err := os.Stat(a)
		if err != nil {
			return nil, err
		}
		if !st.IsDir() {
			paths = append(paths, a)
			continue
		}
		ents, err := os.ReadDir(a)
		if err != nil {
			return nil, err
		}
		n := 0
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".fr") {
				paths = append(paths, filepath.Join(a, e.Name()))
				n++
			}
		}
		if n == 0 {
			return nil, fmt.Errorf("%s: no .fr dumps", a)
		}
	}
	sort.Strings(paths)
	return paths, nil
}

// focus resolves the -around/-window flags to an entry index range
// [lo, hi) of the merged timeline.
func focus(tl *flightrec.Timeline, around int, window time.Duration) (int, int, error) {
	if around < 0 {
		return 0, len(tl.Entries), nil
	}
	if around >= len(tl.Violations) {
		return 0, 0, fmt.Errorf("-around %d: timeline has %d violation(s)", around, len(tl.Violations))
	}
	center := tl.Entries[tl.Violations[around]].Wall
	lo, hi := 0, len(tl.Entries)
	for lo < hi && tl.Entries[lo].Wall < center-int64(window) {
		lo++
	}
	for hi > lo && tl.Entries[hi-1].Wall > center+int64(window) {
		hi--
	}
	return lo, hi, nil
}

func render(out io.Writer, tl *flightrec.Timeline, diffs []flightrec.Divergence, around, lo, hi int) {
	total := 0
	for _, d := range tl.Dumps {
		total += len(d.Records)
		if d.Dropped > 0 {
			fmt.Fprintf(out, "note: %s's ring wrapped, %d oldest records lost\n", d.Member, d.Dropped)
		}
	}
	fmt.Fprintf(out, "flight recordings: %d members (%s), %d records\n",
		len(tl.Members), strings.Join(tl.Members, ", "), total)
	var skews []string
	for i, m := range tl.Members {
		if tl.Skew[i] != 0 {
			skews = append(skews, fmt.Sprintf("%s +%v", m, tl.Skew[i]))
		}
	}
	if len(skews) > 0 {
		fmt.Fprintf(out, "clock skew corrected: %s\n", strings.Join(skews, ", "))
	}

	fmt.Fprintf(out, "violations: %d\n", len(tl.Violations))
	for i, vi := range tl.Violations {
		e := tl.Entries[vi]
		fmt.Fprintf(out, "  [%d] %s  %s  %s\n", i, stamp(e.Wall), e.Member, describe(tl, e))
	}

	if around >= 0 {
		c := tl.Entries[tl.Violations[around]]
		fmt.Fprintf(out, "\ntimeline around violation %d (%s at %s), %d of %d entries:\n",
			around, describe(tl, c), c.Member, hi-lo, len(tl.Entries))
	} else {
		fmt.Fprintf(out, "\ntimeline (%d entries):\n", len(tl.Entries))
	}
	for i := lo; i < hi; i++ {
		e := tl.Entries[i]
		mark := " "
		if e.Rec.Kind == flightrec.KindViolation {
			mark = "*"
		}
		conc := ""
		if e.Concurrent {
			conc = "  ⚠ concurrent"
		}
		fmt.Fprintf(out, "%s %s  %-8s %s%s\n", mark, stamp(e.Wall), e.Member, describe(tl, e), conc)
	}

	fmt.Fprintf(out, "\ndelivery divergences: %d\n", len(diffs))
	for _, d := range diffs {
		fmt.Fprintf(out, "  %s  members %s: %s\n", d.Label, strings.Join(d.Members, ","), d.Detail)
	}
}

// stamp renders a corrected wall-clock estimate at microsecond grain.
func stamp(wall int64) string {
	return time.Unix(0, wall).UTC().Format("15:04:05.000000")
}

// describe renders one record with its symbols resolved, kind by kind.
func describe(tl *flightrec.Timeline, e flightrec.Entry) string {
	r := e.Rec
	a := tl.Label(e, r.A)
	b := tl.Label(e, r.B)
	peer := tl.Dumps[e.MemberIdx].Sym(r.B.Org)
	switch r.Kind {
	case flightrec.KindFrameSend:
		return fmt.Sprintf("send %s (%dB)", a, r.Value)
	case flightrec.KindFrameRecv:
		return fmt.Sprintf("recv %s", a)
	case flightrec.KindFrameForward:
		return fmt.Sprintf("forward %s (hop %d)", a, r.Value)
	case flightrec.KindHoldback:
		if r.B.IsZero() {
			return fmt.Sprintf("holdback %s", a)
		}
		return fmt.Sprintf("holdback %s missing %s", a, b)
	case flightrec.KindDepResolved:
		return fmt.Sprintf("dep-resolved %s waited %v for %s", a, time.Duration(r.Value), b)
	case flightrec.KindDeliver:
		return fmt.Sprintf("deliver %s", a)
	case flightrec.KindFetch:
		return fmt.Sprintf("fetch %s from %s", a, peer)
	case flightrec.KindStable:
		return fmt.Sprintf("stable cycle %d closed by %s", r.Value, a)
	case flightrec.KindEpoch:
		return fmt.Sprintf("epoch %d adopted", r.Value)
	case flightrec.KindElect:
		return fmt.Sprintf("elected leader of epoch %d (%d re-proposed)", r.Value, r.B.Seq)
	case flightrec.KindSuspect:
		return fmt.Sprintf("suspect %s", peer)
	case flightrec.KindRetransmit:
		return fmt.Sprintf("retransmit link seq %d to %s", r.Value, peer)
	case flightrec.KindNack:
		return fmt.Sprintf("nack to %s from seq %d (width %d)", peer, r.B.Seq, r.Value)
	case flightrec.KindShed:
		return fmt.Sprintf("shed %s", peer)
	case flightrec.KindResync:
		return fmt.Sprintf("resync after %s skipped %d", peer, r.Value)
	case flightrec.KindViolation:
		return fmt.Sprintf("violation %s on %s (dep %s)", trace.ViolationKind(r.Value), a, b)
	case flightrec.KindSeed:
		return fmt.Sprintf("seeded %d rejoin watermarks", r.Value)
	case flightrec.KindRead:
		return fmt.Sprintf("deferred read served from cycle %d (boundary %d)", r.Value, r.B.Seq)
	default:
		return fmt.Sprintf("%s a=%s b=%s value=%d", r.Kind, a, b, r.Value)
	}
}

// jsonEntry is one timeline entry in -json output.
type jsonEntry struct {
	Wall       string `json:"wall"`
	Member     string `json:"member"`
	Kind       string `json:"kind"`
	A          string `json:"a,omitempty"`
	B          string `json:"b,omitempty"`
	Peer       string `json:"peer,omitempty"`
	Value      int64  `json:"value"`
	Text       string `json:"text"`
	Concurrent bool   `json:"concurrent,omitempty"`
}

func toJSONEntry(tl *flightrec.Timeline, e flightrec.Entry) jsonEntry {
	return jsonEntry{
		Wall:       time.Unix(0, e.Wall).UTC().Format(time.RFC3339Nano),
		Member:     e.Member,
		Kind:       e.Rec.Kind.String(),
		A:          tl.Label(e, e.Rec.A),
		B:          tl.Label(e, e.Rec.B),
		Peer:       tl.Dumps[e.MemberIdx].Sym(e.Rec.B.Org),
		Value:      e.Rec.Value,
		Text:       describe(tl, e),
		Concurrent: e.Concurrent,
	}
}

func writeJSON(out io.Writer, tl *flightrec.Timeline, diffs []flightrec.Divergence, lo, hi int) error {
	skew := make(map[string]string, len(tl.Members))
	for i, m := range tl.Members {
		skew[m] = tl.Skew[i].String()
	}
	viols := make([]jsonEntry, 0, len(tl.Violations))
	for _, vi := range tl.Violations {
		viols = append(viols, toJSONEntry(tl, tl.Entries[vi]))
	}
	entries := make([]jsonEntry, 0, hi-lo)
	for i := lo; i < hi; i++ {
		entries = append(entries, toJSONEntry(tl, tl.Entries[i]))
	}
	doc := struct {
		Members     []string               `json:"members"`
		Skew        map[string]string      `json:"skew"`
		Violations  []jsonEntry            `json:"violations"`
		Entries     []jsonEntry            `json:"entries"`
		Divergences []flightrec.Divergence `json:"divergences"`
	}{tl.Members, skew, viols, entries, diffs}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// writeDOT renders the [lo, hi) window as a graph: one node per entry,
// solid edges for each member's program order, dashed edges for the
// send→recv/deliver message flow. Violations are drawn red; concurrent
// placements dotted-bordered.
func writeDOT(out io.Writer, tl *flightrec.Timeline, lo, hi int) {
	fmt.Fprintln(out, "digraph flight {")
	fmt.Fprintln(out, "  rankdir=TB; node [shape=box, fontsize=9];")
	last := make(map[string]int) // member → last node index in window
	sends := make(map[string]int)
	for i := lo; i < hi; i++ {
		e := tl.Entries[i]
		attrs := ""
		if e.Rec.Kind == flightrec.KindViolation {
			attrs = ", color=red, fontcolor=red"
		} else if e.Concurrent {
			attrs = ", style=dotted"
		}
		fmt.Fprintf(out, "  n%d [label=%q%s];\n", i,
			fmt.Sprintf("%s\n%s", e.Member, describe(tl, e)), attrs)
		if p, ok := last[e.Member]; ok {
			fmt.Fprintf(out, "  n%d -> n%d;\n", p, i)
		}
		last[e.Member] = i
		label := tl.Label(e, e.Rec.A)
		switch e.Rec.Kind {
		case flightrec.KindFrameSend:
			if _, ok := sends[label]; !ok {
				sends[label] = i
			}
		case flightrec.KindFrameRecv, flightrec.KindDeliver:
			if s, ok := sends[label]; ok && tl.Entries[s].Member != e.Member {
				fmt.Fprintf(out, "  n%d -> n%d [style=dashed, label=%q];\n", s, i, label)
			}
		}
	}
	fmt.Fprintln(out, "}")
}
