package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"causalshare/internal/chaos"
	"causalshare/internal/consistency"
	"causalshare/internal/trace"
	"causalshare/internal/transport"
)

// recordCrimeScene runs a deterministic chaos schedule with an injected
// causal-order inversion at member b and returns the flight-dump
// directory the harness wrote.
func recordCrimeScene(t *testing.T) string {
	t.Helper()
	members := []string{"a", "b", "c"}
	net := transport.NewChanNet(transport.FaultModel{})
	defer func() { _ = net.Close() }()
	dir := t.TempDir()
	res, err := chaos.Run(chaos.Options{
		Members:        members,
		Net:            net,
		Schedule:       chaos.Schedule{Actions: []chaos.Action{{At: 30 * time.Millisecond, Reorder: "b"}}},
		SendsPerMember: 10,
		FailTimeout:    60 * time.Millisecond,
		Patience:       12 * time.Millisecond,
		Collector:      trace.NewCollector(trace.Config{}),
		Recorder:       consistency.NewDeclaredRecorder(),
		FlightDir:      dir,
	})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if len(res.FlightRecords) == 0 {
		t.Fatalf("injected violation produced no flight dumps (violations=%d)", res.Violations)
	}
	return dir
}

// TestRoundTripNamesViolationAndMembers is the full forensics loop: chaos
// run → auto-dumped black boxes → causalfr -around reconstructs the
// cross-member timeline, naming the violating message and the members
// whose delivery orders disagree.
func TestRoundTripNamesViolationAndMembers(t *testing.T) {
	dir := recordCrimeScene(t)

	var buf strings.Builder
	if err := run([]string{"-around", "0", "-window", "500ms", dir}, &buf); err != nil {
		t.Fatalf("causalfr: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"violation causal-order on b!inject:2 (dep b!inject:1)", // the violating message
		"deliver b!inject:2", // the inverted delivery is inside the window
		"delivery divergences",
		"b!inject:1  members b:", // the disagreeing member on the diff line
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Both sides of the disagreement are on the rendered timeline: the
	// victim's inverted order and the witness's correct one.
	if !strings.Contains(out, " b ") || !strings.Contains(out, " a ") {
		t.Errorf("window does not show both disagreeing members:\n%s", out)
	}
}

// TestRoundTripJSONAndDOT exercises the machine-readable outputs over the
// same recording.
func TestRoundTripJSONAndDOT(t *testing.T) {
	dir := recordCrimeScene(t)

	var buf strings.Builder
	if err := run([]string{"-json", dir}, &buf); err != nil {
		t.Fatalf("causalfr -json: %v", err)
	}
	var doc struct {
		Members    []string `json:"members"`
		Violations []struct {
			Member string `json:"member"`
			A      string `json:"a"`
			B      string `json:"b"`
		} `json:"violations"`
		Entries     []json.RawMessage `json:"entries"`
		Divergences []struct {
			Label   string   `json:"Label"`
			Members []string `json:"Members"`
		} `json:"divergences"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, buf.String())
	}
	if len(doc.Members) != 3 {
		t.Fatalf("members = %v, want 3", doc.Members)
	}
	if len(doc.Violations) == 0 || doc.Violations[0].Member != "b" ||
		doc.Violations[0].A != "b!inject:2" || doc.Violations[0].B != "b!inject:1" {
		t.Fatalf("violations = %+v", doc.Violations)
	}
	if len(doc.Entries) == 0 || len(doc.Divergences) == 0 {
		t.Fatalf("empty entries (%d) or divergences (%d)", len(doc.Entries), len(doc.Divergences))
	}

	dot := filepath.Join(t.TempDir(), "flight.dot")
	buf.Reset()
	if err := run([]string{"-around", "0", "-dot", dot, dir}, &buf); err != nil {
		t.Fatalf("causalfr -dot: %v", err)
	}
	g, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"digraph flight", "color=red", "->"} {
		if !strings.Contains(string(g), want) {
			t.Errorf("DOT output missing %q:\n%s", want, g)
		}
	}
}

// TestRunErrors pins the failure modes: no args, a directory without
// dumps, and -around beyond the violation count.
func TestRunErrors(t *testing.T) {
	var buf strings.Builder
	if err := run(nil, &buf); err == nil {
		t.Error("no args: want error")
	}
	if err := run([]string{t.TempDir()}, &buf); err == nil {
		t.Error("empty dir: want error")
	}
	dir := recordCrimeScene(t)
	if err := run([]string{"-around", "99", dir}, &buf); err == nil {
		t.Error("-around out of range: want error")
	}
}

// TestVersionFlag pins the -version contract shared by every command.
func TestVersionFlag(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-version"}, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) == "" {
		t.Fatal("-version printed nothing")
	}
}
