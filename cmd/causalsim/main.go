// Command causalsim runs a live replicated-counter scenario on the real
// stack (front-end protocol → causal broadcast engine → in-process faulty
// network → replicas) and reports the stable-point audit plus engine
// metrics. It is the quickest way to see the paper's headline property:
// replicas disagree mid-activity and provably agree at every stable
// point, with zero agreement traffic.
//
// Usage:
//
//	causalsim [-n 5] [-cycles 20] [-fgamma 20] [-engine osend|cbcast|pccast]
//	          [-drop 0.1] [-jitter 5ms] [-seed 7]
//	          [-wal-dir /tmp/sim-wal] [-wal-sync each|interval|async]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"causalshare/internal/causal"
	"causalshare/internal/core"
	"causalshare/internal/flightrec"
	"causalshare/internal/group"
	"causalshare/internal/obs"
	"causalshare/internal/reliable"
	"causalshare/internal/shareddata"
	"causalshare/internal/telemetry"
	"causalshare/internal/transport"
	"causalshare/internal/wal"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "causalsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("causalsim", flag.ContinueOnError)
	n := fs.Int("n", 5, "group size")
	cycles := fs.Int("cycles", 20, "causal activities to run")
	fgamma := fs.Int("fgamma", 20, "commutative operations per activity")
	engine := fs.String("engine", "osend", "causal engine: osend, cbcast or pccast")
	drop := fs.Float64("drop", 0.1, "frame drop probability")
	jitter := fs.Duration("jitter", 5*time.Millisecond, "max network latency")
	seed := fs.Int64("seed", 7, "fault model seed")
	dot := fs.Bool("dot", false, "print the extracted dependency graph in Graphviz dot syntax")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /vars and /trace on this address during the run (e.g. :9090)")
	walDir := fs.String("wal-dir", "", "journal every member's deliveries to a write-ahead log under this directory (one subdirectory per member)")
	walSync := fs.String("wal-sync", "interval", "WAL sync policy: each, interval or async (with -wal-dir)")
	version := fs.Bool("version", false, "print the binary version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println(telemetry.Version())
		return nil
	}

	reg := telemetry.NewRegistry()
	ring := telemetry.NewRing(4096)
	transport.RegisterPoolMetrics(reg)
	// Every member gets a black-box flight recorder; with -metrics-addr the
	// boxes are dumpable over /flightrec/<member> while the run is live.
	flight := flightrec.NewSet(flightrec.Config{Telemetry: reg})
	if *metricsAddr != "" {
		srv, err := telemetry.Serve(*metricsAddr, reg, ring,
			telemetry.Healthz(fmt.Sprintf("causalsim(%s,n=%d)", *engine, *n)),
			flight.Route())
		if err != nil {
			return err
		}
		defer func() { _ = srv.Close() }()
		fmt.Printf("telemetry: serving http://%s/metrics\n", srv.Addr())
	}

	ids := make([]string, *n)
	for i := range ids {
		ids[i] = fmt.Sprintf("r%02d", i)
	}
	grp, err := group.New("counter", ids)
	if err != nil {
		return err
	}
	net := transport.NewChanNetObserved(transport.FaultModel{
		DropProb: *drop,
		MaxDelay: *jitter,
		Seed:     *seed,
	}, reg)
	defer func() { _ = net.Close() }()

	// With -wal-dir every member journals its deliveries to a real on-disk
	// write-ahead log (one directory per member, DESIGN.md §15); an
	// existing log is extended, so repeated runs against the same
	// directory accumulate one continuous history per member.
	var walPolicy wal.Policy
	if *walDir != "" {
		var err error
		if walPolicy, err = wal.ParsePolicy(*walSync); err != nil {
			return err
		}
	}

	trace := obs.NewTrace()
	replicas := make(map[string]*core.Replica, *n)
	var engines []causal.Broadcaster
	var wlogs []*wal.WAL
	defer func() {
		for _, e := range engines {
			_ = e.Close()
		}
		for _, w := range wlogs {
			_ = w.Close()
		}
	}()
	for _, id := range ids {
		box := flight.For(id)
		var wlog *wal.WAL
		if *walDir != "" {
			var err error
			wlog, err = wal.Open(wal.Options{
				Dir:       filepath.Join(*walDir, id),
				Policy:    walPolicy,
				Telemetry: reg,
			})
			if err != nil {
				return err
			}
			wlogs = append(wlogs, wlog)
		}
		rep, err := core.NewReplica(core.ReplicaConfig{
			Self:      id,
			Initial:   shareddata.NewCounter(0),
			Apply:     shareddata.ApplyCounter,
			Telemetry: reg,
			Trace:     ring,
			Flight:    box,
		})
		if err != nil {
			return err
		}
		replicas[id] = rep
		conn, err := net.Attach(id)
		if err != nil {
			return err
		}
		deliver := trace.Observer(id, rep.Deliver)
		var eng causal.Broadcaster
		switch *engine {
		case "osend":
			eng, err = causal.NewOSend(causal.OSendConfig{
				Self: id, Group: grp, Conn: conn, Deliver: deliver,
				Patience:  10 * time.Millisecond,
				Telemetry: reg,
				Trace:     ring,
				Flight:    box,
				Journal:   wlog,
			})
		case "cbcast":
			eng, err = causal.NewCBCast(causal.CBCastConfig{
				Self: id, Group: grp, Conn: conn, Deliver: deliver,
				Patience:  10 * time.Millisecond,
				Telemetry: reg,
				Flight:    box,
				Journal:   wlog,
			})
		case "pccast":
			// PC-cast needs reliable per-pair FIFO links: repair the lossy
			// jittery default network below the engine instead of above it.
			rconn := reliable.Wrap(conn, grp.Others(id), reliable.Config{
				Window:       512,
				AckEvery:     8,
				Tick:         2 * time.Millisecond,
				StallTimeout: 2 * time.Second,
				ShedAfter:    5 * time.Second,
				Seed:         *seed,
				Telemetry:    reg,
				Flight:       box,
			})
			eng, err = causal.NewPCCast(causal.PCCastConfig{
				Self: id, Group: grp, Conn: rconn, Deliver: deliver,
				Patience:  10 * time.Millisecond,
				Telemetry: reg,
				Trace:     ring,
				Flight:    box,
				Journal:   wlog,
			})
		default:
			return fmt.Errorf("unknown engine %q", *engine)
		}
		if err != nil {
			return err
		}
		engines = append(engines, eng)
	}

	fe, err := core.NewFrontEnd("cli", engines[0])
	if err != nil {
		return err
	}
	total := 0
	start := time.Now()
	for c := 0; c < *cycles; c++ {
		for k := 0; k < *fgamma; k++ {
			op := shareddata.Inc()
			if k%2 == 1 {
				op = shareddata.Dec()
			}
			if _, err := fe.Submit(op.Op, op.Kind, op.Body); err != nil {
				return err
			}
			total++
		}
		rd := shareddata.Read()
		if _, err := fe.Submit(rd.Op, rd.Kind, rd.Body); err != nil {
			return err
		}
		total++
	}

	// Wait for every replica to apply everything.
	deadline := time.Now().Add(30 * time.Second)
	for {
		done := true
		for _, rep := range replicas {
			if rep.Applied() < uint64(total) {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replicas did not converge within 30s")
		}
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start)

	histories := make(map[string][]core.StablePoint, *n)
	for id, rep := range replicas {
		histories[id] = rep.StablePoints()
	}
	audit := obs.AuditStablePoints(histories)
	if err := trace.VerifyAll(); err != nil {
		return fmt.Errorf("causal delivery violated: %w", err)
	}
	delivered, err := trace.SameDeliverySet()
	if err != nil {
		return fmt.Errorf("delivery sets diverged: %w", err)
	}
	g, err := trace.ExtractGraph()
	if err != nil {
		return err
	}

	fmt.Printf("scenario: %d replicas, %d activities x %d commutative ops, engine=%s drop=%.0f%% jitter=%s\n",
		*n, *cycles, *fgamma, *engine, *drop*100, *jitter)
	fmt.Printf("ran in %s; %d messages delivered at every replica\n", elapsed.Round(time.Millisecond), delivered)
	fmt.Printf("causal delivery: OK at every replica (every OccursAfter respected)\n")
	fmt.Printf("stable points audited: %d, agreement: %v\n", audit.Points, audit.Consistent())
	if !audit.Consistent() {
		fmt.Printf("divergence: %s\n", audit.Divergence)
	}
	fmt.Printf("extracted stable graph: %d nodes, mean antichain width %.2f\n", g.Len(), g.MeanWidth())
	if *dot {
		fmt.Println(g.DOT("causalsim"))
	}
	report, err := core.AnalyzeTrace(trace.Sequence(ids[0]), shareddata.ApplyCounter, shareddata.NewCounter(0), 720)
	if err != nil {
		return fmt.Errorf("trace analysis: %w", err)
	}
	fmt.Printf("trace analysis: %d activities (mean size %.1f), transition-preserving: %v\n",
		report.Activities, report.MeanActivitySize, report.Conforms())
	st, cycle := replicas[ids[0]].ReadStable()
	fmt.Printf("final stable state at cycle %d: %s\n", cycle, st.Digest())
	netStats := net.Stats()
	fmt.Printf("network: sent=%d delivered=%d dropped=%d duplicated=%d\n",
		netStats.Sent, netStats.Delivered, netStats.Dropped, netStats.Duplicated)
	snap := reg.Snapshot()
	fmt.Printf("telemetry: frames_sent=%d causal_delivered=%d stable_points=%d trace_events=%d (of %d recorded)\n",
		snap.Get("transport_frames_sent_total"), snap.Get("causal_osend_delivered_total"),
		snap.Get("core_stable_points_total"), ring.Len(), ring.Len()+int(ring.Dropped()))
	if *walDir != "" {
		// Force the tails to stable storage before reporting: a summary
		// that precedes the fsync would overstate what a crash keeps.
		for _, w := range wlogs {
			if err := w.Sync(); err != nil {
				return fmt.Errorf("wal sync: %w", err)
			}
		}
		wsnap := reg.Snapshot()
		fmt.Printf("durability: %d members journaled to %s (sync=%s): appends=%d bytes=%d syncs=%d\n",
			len(wlogs), *walDir, walPolicy,
			wsnap.Get("wal_appends_total"), wsnap.Get("wal_append_bytes_total"), wsnap.Get("wal_syncs_total"))
	}
	if o, ok := engines[0].(*causal.OSend); ok {
		m := o.Metrics()
		fmt.Printf("engine[%s]: delivered=%d maxBuffered=%d duplicates=%d fetches=%d\n",
			ids[0], m.Delivered, m.MaxBuffered, m.Duplicates, m.Fetches)
	}
	if audit.Consistent() {
		fmt.Printf("RESULT: all %d replicas agreed at every one of %d stable points with zero agreement messages\n",
			*n, audit.Points)
	}
	return nil
}
