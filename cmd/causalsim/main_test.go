package main

import "testing"

func TestRunSmallScenario(t *testing.T) {
	args := []string{"-n", "3", "-cycles", "3", "-fgamma", "4", "-drop", "0.05", "-jitter", "2ms"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestRunCBCastEngine(t *testing.T) {
	args := []string{"-n", "3", "-cycles", "2", "-fgamma", "3", "-engine", "cbcast", "-drop", "0"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestRunDotOutput(t *testing.T) {
	args := []string{"-n", "2", "-cycles", "1", "-fgamma", "2", "-drop", "0", "-dot"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownEngine(t *testing.T) {
	if err := run([]string{"-engine", "bogus"}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
