package main

import "testing"

func TestRunSmallArbitration(t *testing.T) {
	if err := run([]string{"-n", "3", "-rotations", "2", "-jitter", "1ms"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
