// Command lockarb demonstrates the paper's §6.2 decentralized lock
// arbitration (Figure 5) on the live stack: members issue totally ordered
// LOCK/TFR messages and every member's deterministic arbiter chooses the
// same holder sequence — consensus with no arbiter process.
//
// Usage:
//
//	lockarb [-n 3] [-rotations 3] [-jitter 2ms]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"causalshare/internal/causal"
	"causalshare/internal/group"
	"causalshare/internal/lockarb"
	"causalshare/internal/message"
	"causalshare/internal/telemetry"
	"causalshare/internal/total"
	"causalshare/internal/trace"
	"causalshare/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lockarb:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lockarb", flag.ContinueOnError)
	n := fs.Int("n", 3, "group size")
	rotations := fs.Int("rotations", 3, "full acquire/release rotations")
	jitter := fs.Duration("jitter", 2*time.Millisecond, "max network latency")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /vars and /trace on this address during the run (e.g. :9090)")
	version := fs.Bool("version", false, "print the binary version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println(telemetry.Version())
		return nil
	}

	reg := telemetry.NewRegistry()
	ring := telemetry.NewRing(2048)
	col := trace.NewCollector(trace.Config{Telemetry: reg, Ring: ring})
	if *metricsAddr != "" {
		routes := append(trace.Routes(col), telemetry.Healthz(fmt.Sprintf("lockarb(n=%d)", *n)))
		srv, err := telemetry.Serve(*metricsAddr, reg, ring, routes...)
		if err != nil {
			return err
		}
		defer func() { _ = srv.Close() }()
		fmt.Printf("telemetry: serving http://%s/metrics (trace index at /trace/)\n", srv.Addr())
	}

	ids := make([]string, *n)
	for i := range ids {
		ids[i] = fmt.Sprintf("m%02d", i)
	}
	grp, err := group.New("page-lock", ids)
	if err != nil {
		return err
	}
	net := transport.NewChanNetObserved(transport.FaultModel{MaxDelay: *jitter, Seed: 11}, reg)
	defer func() { _ = net.Close() }()

	var mu sync.Mutex
	grantLogs := make(map[string][]string, *n)
	arbiters := make(map[string]*lockarb.Arbiter, *n)
	var engines []*causal.OSend
	var layers []*total.Sequencer
	defer func() {
		for _, l := range layers {
			_ = l.Close()
		}
		for _, e := range engines {
			_ = e.Close()
		}
	}()

	for _, id := range ids {
		id := id
		var arb *lockarb.Arbiter
		sq, err := total.NewSequencer(total.Config{
			Self: id, Group: grp,
			Deliver:   func(m message.Message) { arb.Ingest(m) },
			Telemetry: reg,
			Tracer:    col.Tracer(id),
		})
		if err != nil {
			return err
		}
		conn, err := net.Attach(id)
		if err != nil {
			return err
		}
		eng, err := causal.NewOSend(causal.OSendConfig{
			Self: id, Group: grp, Conn: conn, Deliver: sq.Ingest,
			Patience:  10 * time.Millisecond,
			Telemetry: reg,
			Trace:     ring,
			Tracer:    col.Tracer(id),
		})
		if err != nil {
			return err
		}
		sq.Bind(eng)
		arb, err = lockarb.NewArbiter(lockarb.Config{
			Self: id, Group: grp, Layer: sq,
			OnGrant: func(holder string, cycle uint64) {
				mu.Lock()
				grantLogs[id] = append(grantLogs[id], fmt.Sprintf("%s@S%d", holder, cycle))
				mu.Unlock()
			},
		})
		if err != nil {
			return err
		}
		arbiters[id] = arb
		engines = append(engines, eng)
		layers = append(layers, sq)
	}
	for _, id := range ids {
		if err := arbiters[id].Start(); err != nil {
			return err
		}
	}

	fmt.Printf("arbitrating a shared page among %d members, %d rotations\n", *n, *rotations)
	var wg sync.WaitGroup
	errs := make(chan error, *n)
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for r := 0; r < *rotations; r++ {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				cycle, err := arbiters[id].Acquire(ctx)
				if err != nil {
					cancel()
					errs <- fmt.Errorf("%s: %w", id, err)
					return
				}
				fmt.Printf("  %s holds the page (cycle S%d)\n", id, cycle)
				if err := arbiters[id].Release(); err != nil {
					cancel()
					errs <- err
					return
				}
				cancel()
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}

	// Wait until every member observed every grant, then compare logs.
	want := *n * *rotations
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		done := true
		for _, id := range ids {
			if len(grantLogs[id]) < want {
				done = false
			}
		}
		mu.Unlock()
		if done {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	ref := grantLogs[ids[0]]
	agree := true
	for _, id := range ids[1:] {
		got := grantLogs[id]
		limit := len(ref)
		if len(got) < limit {
			limit = len(got)
		}
		for i := 0; i < limit; i++ {
			if got[i] != ref[i] {
				agree = false
				fmt.Printf("DIVERGENCE at grant %d: %s saw %s, %s saw %s\n",
					i, ids[0], ref[i], id, got[i])
			}
		}
	}
	fmt.Printf("grant sequence (as observed by %s): %v\n", ids[0], ref)
	snap := reg.Snapshot()
	fmt.Printf("telemetry: frames_sent=%d causal_delivered=%d total_delivered=%d sequencer_assigned=%d\n",
		snap.Get("transport_frames_sent_total"), snap.Get("causal_osend_delivered_total"),
		snap.Get("total_delivered_total"), snap.Get("total_sequencer_assigned_total"))
	if v := col.ViolationCount(); v != 0 {
		return fmt.Errorf("trace audit caught %d consistency violations: %v", v, col.Violations())
	}
	if agree {
		fmt.Printf("RESULT: all %d members observed the identical holder sequence — deterministic arbitration reached consensus with no arbiter (trace audit clean)\n", *n)
	}
	return nil
}
