package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	// E7 is pure computation (no simulation) and fast.
	if err := run([]string{"E7"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"E99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
