// Command experiments regenerates every table of the paper reproduction
// (experiments E1–E15 of DESIGN.md / EXPERIMENTS.md).
//
// Usage:
//
//	experiments                  # run everything
//	experiments E1 E7            # run selected experiments
//	experiments -engine pccast E14  # chaos-backed runners under PC-cast
//	experiments -list            # list experiments
package main

import (
	"flag"
	"fmt"
	"os"

	"causalshare/internal/experiments"
	"causalshare/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	list := fs.Bool("list", false, "list experiment ids and exit")
	engine := fs.String("engine", "osend", "causal engine for chaos-backed runners (E14): osend or pccast; E15 always sweeps all engines")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /vars and /trace on this address while experiments run (e.g. :9090)")
	version := fs.Bool("version", false, "print the binary version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println(telemetry.Version())
		return nil
	}
	switch *engine {
	case "osend", "pccast":
		experiments.SetEngine(*engine)
	default:
		return fmt.Errorf("unknown engine %q (chaos-backed runners support osend and pccast)", *engine)
	}
	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		experiments.SetTelemetry(reg)
		srv, err := telemetry.Serve(*metricsAddr, reg, nil, telemetry.Healthz("experiments("+*engine+")"))
		if err != nil {
			return err
		}
		defer func() { _ = srv.Close() }()
		fmt.Printf("telemetry: serving http://%s/metrics\n", srv.Addr())
	}
	runners := experiments.All()
	ids := experiments.IDs()
	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return nil
	}
	selected := fs.Args()
	if len(selected) == 0 {
		selected = ids
	}
	for _, id := range selected {
		runner, ok := runners[id]
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", id)
		}
		fmt.Println(runner())
	}
	return nil
}
