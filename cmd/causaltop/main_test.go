package main

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"causalshare/internal/chaos"
	"causalshare/internal/reliable"
	"causalshare/internal/telemetry"
	"causalshare/internal/trace"
	"causalshare/internal/transport"
)

// TestCausaltopAgainstChaosRun is the acceptance path end to end: a real
// chaos run under loss populates one registry per member, each registry
// is served over HTTP exactly as a deployed member would, and causaltop
// -once -json against those endpoints must report per-peer causal lag,
// visibility quantiles, per-link health, and epoch state for every
// member.
func TestCausaltopAgainstChaosRun(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	net := transport.NewChanNet(transport.FaultModel{DropProb: 0.2, Seed: 11})
	defer func() { _ = net.Close() }()

	regs := make(map[string]*telemetry.Registry, len(members))
	for _, id := range members {
		regs[id] = telemetry.NewRegistry()
	}
	res, err := chaos.Run(chaos.Options{
		Members:        members,
		Net:            net,
		SendsPerMember: 15,
		Step:           2 * time.Millisecond,
		Patience:       12 * time.Millisecond,
		Timeout:        60 * time.Second,
		Collector:      trace.NewCollector(trace.Config{}),
		TelemetryFor:   func(member string) *telemetry.Registry { return regs[member] },
		Reliable: &reliable.Config{
			Window:       128,
			AckEvery:     8,
			Tick:         2 * time.Millisecond,
			StallTimeout: 300 * time.Millisecond,
			ShedAfter:    500 * time.Millisecond,
			Seed:         1,
		},
	})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if !res.Converged {
		t.Fatal("chaos run did not converge")
	}

	targets := make([]string, 0, len(members))
	for _, id := range members {
		srv, err := telemetry.Serve("127.0.0.1:0", regs[id], nil, telemetry.Healthz(id))
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = srv.Close() }()
		targets = append(targets, srv.Addr())
	}

	var out bytes.Buffer
	args := []string{"-targets", joinTargets(targets), "-once", "-json"}
	if err := run(args, &out); err != nil {
		t.Fatalf("causaltop %v: %v", args, err)
	}
	var view telemetry.ClusterView
	if err := json.Unmarshal(out.Bytes(), &view); err != nil {
		t.Fatalf("causaltop emitted invalid JSON: %v\n%s", err, out.String())
	}

	if view.Up != len(members) || view.Down != 0 {
		t.Fatalf("up/down = %d/%d, want %d/0", view.Up, view.Down, len(members))
	}
	seen := map[string]bool{}
	for _, m := range view.Members {
		seen[m.Member] = true
		if !m.Up {
			t.Errorf("member %s reported down: %s", m.Member, m.Err)
			continue
		}
		// Per-peer causal lag: one PeerLag entry per other member.
		if len(m.PeerLags) != len(members)-1 {
			t.Errorf("%s: %d peer-lag entries, want %d", m.Member, len(m.PeerLags), len(members)-1)
		}
		// Visibility quantiles: the run moved data under loss, so the
		// histograms filled and the quantile ladder is monotone.
		if m.VisibilityCount == 0 {
			t.Errorf("%s: no visibility observations", m.Member)
		}
		if m.VisibilityP50 <= 0 || m.VisibilityP99 < m.VisibilityP50 || m.VisibilityP999 < m.VisibilityP99 {
			t.Errorf("%s: quantiles not monotone: p50=%v p99=%v p999=%v",
				m.Member, m.VisibilityP50, m.VisibilityP99, m.VisibilityP999)
		}
		// Per-link health: RTT samples and occupancy per other member.
		if len(m.Links) != len(members)-1 {
			t.Errorf("%s: %d link entries, want %d", m.Member, len(m.Links), len(members)-1)
		}
		for _, l := range m.Links {
			if l.RTTMicros <= 0 {
				t.Errorf("%s -> %s: no RTT estimate", m.Member, l.Peer)
			}
		}
	}
	for _, id := range members {
		if !seen[id] {
			t.Errorf("member %s missing from cluster view", id)
		}
	}
	// Epoch skew must be coherent (the fixed-sequencer run stays at epoch
	// 0 everywhere; the point is the skew arithmetic, not the value).
	if view.EpochSkew != view.MaxEpoch-view.MinEpoch {
		t.Errorf("epoch skew %d != max-min %d", view.EpochSkew, view.MaxEpoch-view.MinEpoch)
	}
	if view.StabilitySkew < 0 {
		t.Errorf("negative stability skew %d", view.StabilitySkew)
	}
}

func joinTargets(ts []string) string {
	out := ""
	for i, t := range ts {
		if i > 0 {
			out += ","
		}
		out += t
	}
	return out
}

// TestRunOnceRendersText covers the human-facing renderer against a live
// endpoint (no chaos run needed: an empty registry still renders the
// summary and a member row).
func TestRunOnceRendersText(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv, err := telemetry.Serve("127.0.0.1:0", reg, nil, telemetry.Healthz("solo"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	var out bytes.Buffer
	if err := run([]string{"-targets", srv.Addr(), "-once"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"causaltop", "members up 1 / down 0", "solo", "MEMBER"} {
		if !bytes.Contains([]byte(text), []byte(want)) {
			t.Errorf("rendered output missing %q:\n%s", want, text)
		}
	}
}

// TestRunNoTargets pins the usage error.
func TestRunNoTargets(t *testing.T) {
	if err := run([]string{"-once"}, &bytes.Buffer{}); err == nil {
		t.Fatal("want error with no targets")
	}
}

// TestRunOnceExitsNonzeroWhenMemberDown pins -once as a health probe: a
// target that cannot be scraped must fail the invocation (scripts and CI
// gate on the exit code), while the healthy member still renders. The
// still-running live mode keeps tolerating down members — that is the
// dashboard's whole point.
func TestRunOnceExitsNonzeroWhenMemberDown(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv, err := telemetry.Serve("127.0.0.1:0", reg, nil, telemetry.Healthz("alive"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	// A listener that is immediately closed: connection refused, the
	// cleanest "member down".
	dead, err := telemetry.Serve("127.0.0.1:0", telemetry.NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr()
	_ = dead.Close()

	var out bytes.Buffer
	err = run([]string{"-targets", srv.Addr() + "," + deadAddr, "-once"}, &out)
	if err == nil {
		t.Fatalf("-once with a down member returned success:\n%s", out.String())
	}
	if !bytes.Contains([]byte(err.Error()), []byte(deadAddr)) {
		t.Errorf("error %q does not name the down target %s", err, deadAddr)
	}
	if !bytes.Contains(out.Bytes(), []byte("alive")) {
		t.Errorf("healthy member missing from output:\n%s", out.String())
	}
	// -json keeps the same gate.
	out.Reset()
	if err := run([]string{"-targets", srv.Addr() + "," + deadAddr, "-once", "-json"}, &out); err == nil {
		t.Fatal("-once -json with a down member returned success")
	}
}

// TestVersionFlag pins the -version contract shared by every command.
func TestVersionFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-version"}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("-version printed nothing")
	}
}
