// Command causaltop is the cluster observability dashboard: it scrapes
// every member's telemetry endpoint (/vars, /healthz) and renders the
// merged view — per-peer causal lag, send-to-deliver visibility
// quantiles, per-link RTT and occupancy, and the epoch/stability skew
// across the group.
//
// Usage:
//
//	causaltop -targets :9090,:9091,:9092            # live dashboard, 2s refresh
//	causaltop -targets host1:9090,host2:9090 -once  # single snapshot, plain text
//	causaltop -targets :9090,:9091 -once -json      # single snapshot as JSON
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"causalshare/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "causaltop:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("causaltop", flag.ContinueOnError)
	targetsFlag := fs.String("targets", "", "comma-separated telemetry addresses (host:port or URL), one per member")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval in live mode")
	timeout := fs.Duration("timeout", 2*time.Second, "per-scrape HTTP timeout")
	once := fs.Bool("once", false, "scrape once, print, and exit; exits non-zero if any member is down or unhealthy")
	asJSON := fs.Bool("json", false, "emit the cluster view as JSON (implies no screen clearing)")
	version := fs.Bool("version", false, "print the binary version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, telemetry.Version())
		return nil
	}
	targets := splitTargets(*targetsFlag)
	if len(targets) == 0 {
		return fmt.Errorf("no targets (pass -targets host:port,host:port)")
	}

	scraper := &telemetry.Scraper{Timeout: *timeout}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	emit := func(clear bool) (telemetry.ClusterView, error) {
		view := scraper.ScrapeCluster(ctx, targets)
		if *asJSON {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			return view, enc.Encode(view)
		}
		if clear {
			fmt.Fprint(out, "\x1b[2J\x1b[H") // clear screen, home cursor
		}
		render(out, view)
		return view, nil
	}

	if *once {
		// One-shot mode is what scripts and CI probes run; a member that
		// failed to scrape must fail the probe, not hide in the DOWN row.
		view, err := emit(false)
		if err != nil {
			return err
		}
		if view.Down > 0 {
			var down []string
			for _, m := range view.Members {
				if !m.Up {
					down = append(down, m.Member)
				}
			}
			return fmt.Errorf("%d of %d members down or unhealthy: %s",
				view.Down, len(view.Members), strings.Join(down, ", "))
		}
		return nil
	}
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		if _, err := emit(!*asJSON); err != nil {
			return err
		}
		select {
		case <-ctx.Done():
			return nil
		case <-tick.C:
		}
	}
}

func splitTargets(s string) []string {
	var out []string
	for _, t := range strings.Split(s, ",") {
		if t = strings.TrimSpace(t); t != "" {
			out = append(out, t)
		}
	}
	return out
}

// render prints the cluster view as a fixed-width dashboard: a summary
// header, one row per member, then one row per (member, link).
func render(out io.Writer, v telemetry.ClusterView) {
	fmt.Fprintf(out, "causaltop  %s  members up %d / down %d\n",
		v.ScrapedAt.Format("15:04:05"), v.Up, v.Down)
	fmt.Fprintf(out, "stability cycle [%d..%d] skew %d   epoch [%d..%d] skew %d   shed links %d\n",
		v.MinStableCycle, v.MaxStableCycle, v.StabilitySkew,
		v.MinEpoch, v.MaxEpoch, v.EpochSkew, v.ShedLinks)
	fmt.Fprintf(out, "worst: holdback %s  pending-age %s  frontier-lag %s  rtt %s  vis-p99 %s\n\n",
		offender(v.MaxHoldback, "%d msgs"),
		offender(v.MaxPendingAge, "%d ms"),
		offender(v.MaxFrontier, "%d msgs"),
		offender(v.MaxRTT, "%d us"),
		seconds(v.WorstVisibilityP99))

	fmt.Fprintf(out, "%-12s %-5s %6s %6s %9s %8s %9s %10s %10s %10s %6s %8s\n",
		"MEMBER", "UP", "EPOCH", "CYCLE", "STABLE-MS", "HOLDBACK", "PEND-MS",
		"VIS-P50", "VIS-P99", "VIS-P999", "GORTN", "HEAP-MB")
	for _, m := range v.Members {
		if !m.Up {
			fmt.Fprintf(out, "%-12s %-5s %s\n", m.Member, "DOWN", m.Err)
			continue
		}
		fmt.Fprintf(out, "%-12s %-5s %6d %6d %9d %8d %9d %10s %10s %10s %6d %8.1f\n",
			m.Member, "up", m.Epoch, m.StableCycle, m.StableAgeMS,
			m.MaxHoldbackDepth, m.MaxPendingAgeMS,
			seconds(m.VisibilityP50), seconds(m.VisibilityP99), seconds(m.VisibilityP999),
			m.Goroutines, float64(m.HeapInuseBytes)/(1<<20))
	}

	links := 0
	for _, m := range v.Members {
		links += len(m.Links)
	}
	if links == 0 {
		return
	}
	fmt.Fprintf(out, "\n%-12s %-12s %9s %6s %8s %5s\n",
		"MEMBER", "LINK", "RTT-US", "OUTST", "RETX", "SHED")
	for _, m := range v.Members {
		for _, l := range m.Links {
			shed := "-"
			if l.Shed {
				shed = "SHED"
			}
			fmt.Fprintf(out, "%-12s %-12s %9d %6d %8d %5s\n",
				m.Member, l.Peer, l.RTTMicros, l.Outstanding, l.Retransmits, shed)
		}
	}
}

// offender renders a cluster-wide worst value with its location, or "-"
// when the value is zero everywhere.
func offender(o telemetry.Offender, format string) string {
	if o.Value == 0 {
		return "-"
	}
	where := o.Member
	if o.Peer != "" {
		where += "<-" + o.Peer
	}
	return fmt.Sprintf(format+" (%s)", o.Value, where)
}

// seconds renders a latency with a unit that keeps the mantissa small.
func seconds(s float64) string {
	switch {
	case s == 0:
		return "-"
	case s < 1e-3:
		return fmt.Sprintf("%.0fus", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}
