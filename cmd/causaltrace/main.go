// Command causaltrace replays a seeded chaos schedule on the live stack
// with the causal trace collector attached, then reports what the tracer
// saw: per-activity critical paths (the declared dependency chain that
// bounded each activity's end-to-end latency), the realized dependency
// DAG in Graphviz form, and everything the online consistency auditor
// caught. With -audit the process exits non-zero when the run converged
// with violations (or failed to converge), which is what `make audit`
// gates CI on.
//
// Usage:
//
//	causaltrace [-seed 7] [-n 5] [-sends 20] [-horizon 400ms] [-actions 4]
//	            [-top 5] [-dot] [-audit] [-sample 1] [-history out.json]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"causalshare/internal/chaos"
	"causalshare/internal/consistency"
	"causalshare/internal/telemetry"
	"causalshare/internal/trace"
	"causalshare/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "causaltrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("causaltrace", flag.ContinueOnError)
	seed := fs.Int64("seed", 7, "chaos schedule seed")
	n := fs.Int("n", 5, "group size (minimum 3)")
	sends := fs.Int("sends", 20, "data messages per member")
	horizon := fs.Duration("horizon", 400*time.Millisecond, "schedule horizon")
	actions := fs.Int("actions", 4, "crash/recover actions in the schedule")
	failTimeout := fs.Duration("failtimeout", 60*time.Millisecond, "sequencer failover timeout")
	top := fs.Int("top", 5, "activities to report, slowest first (0 = all)")
	dot := fs.Bool("dot", false, "print each reported activity's DAG in Graphviz dot syntax")
	audit := fs.Bool("audit", false, "exit non-zero on any consistency violation or non-convergence")
	sample := fs.Int("sample", 1, "trace one in every N activities (head-based)")
	history := fs.String("history", "", "write the run's recorded consistency history (causalshare-history/v1) to this file and print its CC/CCv/CM verdicts; cccheck replays it")
	flightDir := fs.String("flight-dir", "", "arm per-member black-box flight recorders and dump them (<member>.fr) into this directory after the run, clean or not; causalfr merges the dumps")
	version := fs.Bool("version", false, "print the binary version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println(telemetry.Version())
		return nil
	}
	if *n < 3 {
		return fmt.Errorf("need at least 3 members, got %d", *n)
	}

	members := make([]string, *n)
	for i := range members {
		members[i] = fmt.Sprintf("m%02d", i)
	}
	reg := telemetry.NewRegistry()
	col := trace.NewCollector(trace.Config{Telemetry: reg, SampleEvery: *sample})
	net := transport.NewChanNet(transport.FaultModel{})
	defer func() { _ = net.Close() }()

	sched := chaos.RandomSchedule(*seed, members, *horizon, *actions)
	fmt.Printf("schedule seed=%d horizon=%v actions=%d\n", *seed, *horizon, len(sched.Actions))
	for _, a := range sched.Actions {
		fmt.Printf("  %v\n", a)
	}

	var rec *consistency.Recorder
	if *history != "" {
		rec = consistency.NewDeclaredRecorder()
	}
	res, err := chaos.Run(chaos.Options{
		Members:        members,
		Net:            net,
		Schedule:       sched,
		SendsPerMember: *sends,
		FailTimeout:    *failTimeout,
		Patience:       12 * time.Millisecond,
		Telemetry:      reg,
		Collector:      col,
		Recorder:       rec,
		FlightDir:      *flightDir,
		FlightAlways:   *flightDir != "",
	})
	if err != nil {
		return err
	}
	if len(res.FlightRecords) > 0 {
		fmt.Printf("\nflight: %d black boxes dumped to %s (merge with: causalfr %s)\n",
			len(res.FlightRecords), *flightDir, *flightDir)
	}
	if rec != nil {
		f, err := os.Create(*history)
		if err != nil {
			return err
		}
		werr := rec.History().WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("writing %s: %w", *history, werr)
		}
		fmt.Printf("\nhistory: %s (%d events) %s\n", *history, rec.Events(), res.Consistency)
	}
	fmt.Printf("\nrun: converged=%v frontier=%d elapsed=%v recoveries=%d\n",
		res.Converged, res.Frontier, res.Elapsed.Round(time.Millisecond), len(res.Recovery))

	report(col, *top, *dot)

	// Offline pass over the merged traces, complementing the online audit.
	var offline []trace.Violation
	for _, v := range col.Traces() {
		offline = append(offline, v.VerifyEdges()...)
	}
	fmt.Printf("\naudit: online=%d offline=%d\n", res.Violations, len(offline))
	for _, v := range res.ViolationLog {
		fmt.Printf("  online  %s\n", v)
	}
	for _, v := range offline {
		fmt.Printf("  offline %s\n", v)
	}
	if *audit {
		if !res.Converged {
			return fmt.Errorf("run did not converge (seed %d)", *seed)
		}
		if res.Violations > 0 || len(offline) > 0 {
			return fmt.Errorf("%d online / %d offline consistency violations (seed %d)",
				res.Violations, len(offline), *seed)
		}
		if res.Consistency != nil && !res.Consistency.AllHold() {
			return fmt.Errorf("whole-history consistency check failed (seed %d): %s", *seed, res.Consistency)
		}
	}
	return nil
}

// report prints the slowest activities with their critical paths.
func report(col *trace.Collector, top int, dot bool) {
	views := col.Traces()
	type scored struct {
		view trace.TraceView
		dur  time.Duration
	}
	ranked := make([]scored, 0, len(views))
	for _, v := range views {
		path := v.CriticalPath()
		if len(path) == 0 {
			continue
		}
		ranked = append(ranked, scored{view: v, dur: path[len(path)-1].Completed})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].dur > ranked[j].dur })
	if top > 0 && len(ranked) > top {
		ranked = ranked[:top]
	}
	fmt.Printf("\nactivities: %d traced, reporting %d (slowest first)\n", len(views), len(ranked))
	for _, r := range ranked {
		v := r.view
		fmt.Printf("\ntrace %d origin=%s spans=%d", v.ID, v.Origin, len(v.Spans))
		if v.Parent != 0 {
			fmt.Printf(" parent=%d", v.Parent)
		}
		fmt.Println()
		for i, step := range v.CriticalPath() {
			wait := ""
			if step.Wait > 0 {
				wait = fmt.Sprintf("  (holdback %v)", step.Wait.Round(time.Microsecond))
			}
			fmt.Printf("  %2d. %-16s %-16s done@%v%s\n", i+1, step.Label, step.Kind,
				step.Completed.Round(time.Microsecond), wait)
		}
		if dot {
			fmt.Println(v.DOT())
		}
	}
}
