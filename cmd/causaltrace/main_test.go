package main

import (
	"os"
	"path/filepath"
	"testing"

	"causalshare/internal/consistency"
)

// TestRunAuditedReplay smoke-tests the full CLI path: a small seeded
// chaos replay with the auditor required clean, plus the recorded
// consistency history dumped and re-readable by the checker.
func TestRunAuditedReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("replays a live chaos run")
	}
	hist := filepath.Join(t.TempDir(), "history.json")
	if err := run([]string{"-seed", "21", "-n", "4", "-sends", "6", "-top", "1", "-dot", "-audit", "-history", hist}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(hist)
	if err != nil {
		t.Fatalf("history not written: %v", err)
	}
	defer f.Close()
	h, err := consistency.ReadJSON(f)
	if err != nil {
		t.Fatalf("history not re-readable: %v", err)
	}
	if h.Ops() == 0 {
		t.Fatal("recorded history is empty")
	}
}

// TestRunRejectsTinyGroup pins the argument validation.
func TestRunRejectsTinyGroup(t *testing.T) {
	if err := run([]string{"-n", "2"}); err == nil {
		t.Fatal("accepted a 2-member group")
	}
}
