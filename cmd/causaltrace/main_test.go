package main

import "testing"

// TestRunAuditedReplay smoke-tests the full CLI path: a small seeded
// chaos replay with the auditor required clean.
func TestRunAuditedReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("replays a live chaos run")
	}
	if err := run([]string{"-seed", "21", "-n", "4", "-sends", "6", "-top", "1", "-dot", "-audit"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunRejectsTinyGroup pins the argument validation.
func TestRunRejectsTinyGroup(t *testing.T) {
	if err := run([]string{"-n", "2"}); err == nil {
		t.Fatal("accepted a 2-member group")
	}
}
