GO ?= go

.PHONY: check build test race vet bench fuzz

## check: the tier-1 gate — vet, build, and race-test everything.
check: vet build race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

## bench: regenerate the hot-path numbers (allocs/op included) into
## BENCH_hotpath.json.
bench:
	$(GO) test -bench=Fanout -benchmem -run '^$$' -json . | tee BENCH_hotpath.json

fuzz:
	$(GO) test -fuzz=FuzzUnmarshalBinary -fuzztime=30s ./internal/message/
