GO ?= go

.PHONY: check build test race vet bench bench-smoke bench-scale bench-trace bench-loss bench-obs bench-check bench-flightrec bench-wal metrics-doc fuzz fuzz-wal wal-torture chaos chaos-loss audit check-consistency flightrec

## check: the tier-1 gate — vet, build, and race-test everything.
check: vet build race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

## bench: regenerate the hot-path numbers (allocs/op included) into
## BENCH_hotpath.json.
bench:
	$(GO) test -bench=Fanout -benchmem -run '^$$' -json . | tee BENCH_hotpath.json

## bench-smoke: run every fan-out benchmark (telemetry, tracing,
## reliability, observability, and black-box recording variants) at a
## fixed iteration count and fail if any reports >0 allocs/op. CI runs
## this so the zero-allocation hot path cannot silently regress.
bench-smoke:
	$(GO) test -bench=Fanout -benchmem -run '^$$' -benchtime=100000x . | tee /tmp/bench-smoke.out
	@awk '/allocs\/op/ { if ($$(NF-1) + 0 > 0) { print "FAIL: " $$1 " reports " $$(NF-1) " allocs/op (want 0)"; bad = 1 } } END { exit bad }' /tmp/bench-smoke.out
	@echo "bench-smoke: 0 allocs/op on every fan-out variant"

## bench-scale: regenerate the E15 metadata-scaling numbers (CBCast vs
## OSend vs PCCast at n up to 256: fan-out ns/op, ordering-metadata bytes
## per frame, frames per broadcast) into BENCH_scale.json. Paced per
## iteration, so 5 iterations keeps the n=256 pccast flood (~65k frames
## per op) to a few seconds.
bench-scale:
	$(GO) test -bench=BroadcastScale -run '^$$' -benchtime=5x -timeout 600s -json . | tee BENCH_scale.json
	@awk -F'"' '/"Output".*BroadcastScale.*ns\/op/ { ok = 1 } END { if (!ok) { print "FAIL: no BroadcastScale rows in BENCH_scale.json"; exit 1 } }' BENCH_scale.json
	@echo "bench-scale: BENCH_scale.json regenerated"

## bench-trace: regenerate the E13 tracing-overhead numbers (fan-out
## pipeline with the collector off / sampled / always-on) into
## BENCH_trace.json.
bench-trace:
	$(GO) test -bench=FanoutTraced -benchmem -run '^$$' -json . | tee BENCH_trace.json

## bench-loss: regenerate the E14 loss-tolerance numbers (fan-out pipeline
## with the reliability sublayer repairing 0–30% sustained frame loss;
## retransmits/op and nacks/op reported per row) into BENCH_loss.json.
bench-loss:
	$(GO) test -bench=ReliableLossSweep -benchmem -run '^$$' -benchtime=3000x -json . | tee BENCH_loss.json

## bench-obs: regenerate the observability-overhead numbers (fan-out
## pipeline with the full plane armed: per-member registries, event
## rings, visibility histograms, per-peer lag funcs) into BENCH_obs.json.
## The same benchmark runs under bench-smoke's zero-alloc gate ("Fanout"
## in the name), so this target is about publishing the ns/op overhead,
## not about catching regressions.
bench-obs:
	$(GO) test -bench=FanoutObserved -benchmem -run '^$$' -benchtime=20000x -json . | tee BENCH_obs.json

## bench-wal: regenerate the E17 durability numbers (fsync-policy sweep:
## n=8 fan-out latency with the WAL armed per policy vs a no-WAL
## baseline, raw per-record append cost, and restart-from-disk replay
## time at 1k–100k records) into BENCH_wal.json.
bench-wal:
	$(GO) test -bench=DurableBroadcastPolicy -benchmem -run '^$$' -benchtime=2000x -timeout 600s -json . | tee BENCH_wal.json
	$(GO) test -bench='WALAppendPolicy|WALRecovery' -benchmem -run '^$$' -timeout 600s -json ./internal/wal/ | tee -a BENCH_wal.json
	@awk '/DurableBroadcastPolicy/ && /ns\/op/ { ok = 1 } END { if (!ok) { print "FAIL: no DurableBroadcastPolicy rows in BENCH_wal.json"; exit 1 } }' BENCH_wal.json
	@awk '/WALRecovery/ && /ns\/op/ { ok = 1 } END { if (!ok) { print "FAIL: no WALRecovery rows in BENCH_wal.json"; exit 1 } }' BENCH_wal.json
	@echo "bench-wal: BENCH_wal.json regenerated"

## bench-check: regenerate the E16 offline-checker numbers (whole-history
## CC/CCv/CM bad-pattern check over recorded chain-register histories at
## 256–18k ops, plus recorder materialization cost) into BENCH_check.json.
bench-check:
	$(GO) test -bench='ConsistencyCheck|RecorderMaterialize' -benchmem -run '^$$' -timeout 600s -json ./internal/consistency/ | tee BENCH_check.json
	@awk '/ConsistencyCheck/ && /ns\/op/ { ok = 1 } END { if (!ok) { print "FAIL: no ConsistencyCheck rows in BENCH_check.json"; exit 1 } }' BENCH_check.json
	@echo "bench-check: BENCH_check.json regenerated"

## bench-flightrec: regenerate the forensic-plane overhead numbers (fan-out
## pipeline with the always-on trace collector AND a per-member black-box
## flight recorder armed) into BENCH_flightrec.json, and fail if any
## variant reports >0 allocs/op: a flight recorder too expensive to leave
## on in production is off during the crash, so recording must cost
## cycles, never garbage. The same benchmark also runs under bench-smoke
## ("Fanout" in the name).
bench-flightrec:
	$(GO) test -bench=FanoutBlackBox -benchmem -run '^$$' -benchtime=100000x -json . | tee BENCH_flightrec.json
	@grep -q "allocs/op" BENCH_flightrec.json || { echo "FAIL: no BlackBox rows in BENCH_flightrec.json"; exit 1; }
	@! grep -E "[1-9][0-9]* allocs/op" BENCH_flightrec.json || { echo "FAIL: a BlackBox variant reports >0 allocs/op (want 0)"; exit 1; }
	@echo "bench-flightrec: BENCH_flightrec.json regenerated, 0 allocs/op on every variant"

## flightrec: black-box round-trip smoke — replay a seeded chaos schedule
## with every member's flight recorder armed (causaltrace -flight-dir),
## then merge the dumped black boxes into one causally-consistent timeline
## with causalfr, in all three output shapes (text, JSON, DOT). Exercises
## record → dump → decode → merge end to end on the live stack.
flightrec:
	rm -rf /tmp/flightrec-smoke
	$(GO) run ./cmd/causaltrace -seed 7 -audit -flight-dir /tmp/flightrec-smoke > /dev/null
	$(GO) run ./cmd/causalfr /tmp/flightrec-smoke
	$(GO) run ./cmd/causalfr -json /tmp/flightrec-smoke > /dev/null
	$(GO) run ./cmd/causalfr -dot - /tmp/flightrec-smoke > /dev/null
	@echo "flightrec: record → dump → merge round trip OK"

## metrics-doc: regenerate docs/METRICS.md from a live registry walk over
## every subsystem's instrument constructors. CI diffs the result against
## the committed file, so a new or renamed metric that skips the doc
## fails the build.
metrics-doc:
	$(GO) run ./cmd/metricsdoc > docs/METRICS.md
	@echo "metrics-doc: docs/METRICS.md regenerated"

fuzz:
	$(GO) test -fuzz=FuzzUnmarshalBinary -fuzztime=30s ./internal/message/

## fuzz-wal: fuzz the WAL record scanner — arbitrary bytes must never
## panic it, and recovery must keep exactly the valid prefix.
fuzz-wal:
	$(GO) test -fuzz=FuzzWALDecode -fuzztime=30s ./internal/wal/

## wal-torture: the durability gate — the WAL crash-point/disk-fault
## torture matrix (torn writes, bit flips, short reads, fsync errors and
## lies, ENOSPC at every append/flush/rotate boundary) plus every
## restart-from-disk chaos scenario, under the race detector, three
## times over (seeded schedules and seeded fault injection: a flake here
## is real nondeterminism, not noise). When CHAOS_FLIGHT_DIR is set
## (CI exports it), a chaos run that ends badly dumps every member's WAL
## segments alongside the black-box flight recorders for post-mortems.
wal-torture:
	$(GO) test -race -count=3 -timeout 600s ./internal/wal/
	$(GO) test -race -run 'DiskRecovery|Durable' -count=3 -timeout 600s ./internal/chaos/

## chaos: run every failover/chaos scenario three times over — the seeded
## schedules must reproduce bit-identically, so a flake here is a real
## nondeterminism bug, not noise.
chaos:
	$(GO) test -run 'Chaos|Failover' -count=3 ./...

## chaos-loss: run every sustained-loss scenario (independent, bursty,
## one-way, and leader-crash-under-loss) three times over on both ChanNet
## and TCPNet — seeded schedules, so any flake is a determinism bug.
chaos-loss:
	$(GO) test -run Loss -count=3 -timeout 600s ./internal/chaos/ ./internal/service/

## audit: the consistency gate — every chaos seed and figure scenario runs
## with the online trace auditor attached (their tests fail on any
## violation), then causaltrace replays a fresh seeded chaos schedule and
## exits non-zero unless the run converged with zero online and offline
## violations.
## When CHAOS_FLIGHT_DIR is set (CI exports it), the chaos tests arm
## black-box flight recorders that dump there on a bad end, and the
## causaltrace replays dump theirs unconditionally — the workflow uploads
## the directory as a failure artifact for causalfr post-mortems.
audit:
	$(GO) test -run 'Chaos|Failover|Figure' ./...
	$(GO) run ./cmd/causaltrace -seed 7 -audit $(if $(CHAOS_FLIGHT_DIR),-flight-dir $(CHAOS_FLIGHT_DIR)/seed7)
	$(GO) run ./cmd/causaltrace -seed 21 -n 4 -sends 12 -audit $(if $(CHAOS_FLIGHT_DIR),-flight-dir $(CHAOS_FLIGHT_DIR)/seed21)
	@echo "audit: converged with zero causal-order violations"

## check-consistency: the offline-checker gate — the consistency
## package's property tests (checker vs brute-force reference), the
## mutation self-test matrices (injected violations must downgrade the
## CC/CCv/CM verdicts exactly as predicted, per engine), the 200-seed
## sim sweep over cbcast/osend/pccast with every recorded history
## required differentiated and fully CC/CCv/CM-clean, and a cccheck
## record/verify round trip through the on-disk history format.
## Quarantined (engine, seed) pairs live in
## internal/sim/testdata/quarantine_seeds.txt; SWEEP_SEEDS overrides
## the sweep width.
check-consistency:
	$(GO) test ./internal/consistency/
	$(GO) test -run 'TestConsistencySweep|TestMutationMatrixAcrossEngines' -timeout 600s ./internal/sim/
	$(GO) run ./cmd/cccheck -record /tmp/cccheck-history.json -seed 7 -audit
	$(GO) run ./cmd/cccheck -json -audit /tmp/cccheck-history.json > /dev/null
	@echo "check-consistency: verdicts hold on every seed; mutations caught"
