GO ?= go

.PHONY: check build test race vet bench bench-smoke fuzz chaos

## check: the tier-1 gate — vet, build, and race-test everything.
check: vet build race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

## bench: regenerate the hot-path numbers (allocs/op included) into
## BENCH_hotpath.json.
bench:
	$(GO) test -bench=Fanout -benchmem -run '^$$' -json . | tee BENCH_hotpath.json

## bench-smoke: run the fan-out benchmark (telemetry enabled) at a fixed
## iteration count and fail if any variant reports >0 allocs/op. CI runs
## this so the zero-allocation hot path cannot silently regress.
bench-smoke:
	$(GO) test -bench=Fanout -benchmem -run '^$$' -benchtime=100000x . | tee /tmp/bench-smoke.out
	@awk '/allocs\/op/ { if ($$(NF-1) + 0 > 0) { print "FAIL: " $$1 " reports " $$(NF-1) " allocs/op (want 0)"; bad = 1 } } END { exit bad }' /tmp/bench-smoke.out
	@echo "bench-smoke: 0 allocs/op on every fan-out variant"

fuzz:
	$(GO) test -fuzz=FuzzUnmarshalBinary -fuzztime=30s ./internal/message/

## chaos: run every failover/chaos scenario three times over — the seeded
## schedules must reproduce bit-identically, so a flake here is a real
## nondeterminism bug, not noise.
chaos:
	$(GO) test -run 'Chaos|Failover' -count=3 ./...
