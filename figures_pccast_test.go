// Figure-scenario tests under the PC-broadcast engine: the same F1–F5
// reproductions as figures_test.go, with the constant-metadata PCCast
// engine carrying the causal layer instead of OSend. The figure nets keep
// their jitter (MaxDelay reorders frames, so the raw conns are not FIFO);
// each member interposes reliable.Wrap to restore per-pair FIFO order —
// the deployment shape DESIGN.md §11 prescribes for PC-cast over anything
// but a pristine link. Every scenario runs under the same online causal
// auditor as the OSend originals.
package causalshare_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"causalshare/internal/causal"
	"causalshare/internal/core"
	"causalshare/internal/group"
	"causalshare/internal/lockarb"
	"causalshare/internal/message"
	"causalshare/internal/obs"
	"causalshare/internal/reliable"
	"causalshare/internal/shareddata"
	"causalshare/internal/total"
	ctrace "causalshare/internal/trace"
	"causalshare/internal/transport"
)

// pccastFigureEngine attaches one member to the jittery figure net behind
// a reliability shim and starts a PCCast engine on it.
func pccastFigureEngine(t *testing.T, net *transport.ChanNet, grp *group.Group, id string, seed int64, col *ctrace.Collector, deliver causal.DeliverFunc) *causal.PCCast {
	t.Helper()
	conn, err := net.Attach(id)
	if err != nil {
		t.Fatal(err)
	}
	rconn := reliable.Wrap(conn, grp.Others(id), reliable.Config{
		Window:       256,
		AckEvery:     8,
		Tick:         time.Millisecond,
		StallTimeout: time.Minute,
		ShedAfter:    time.Minute,
		Seed:         seed,
	})
	eng, err := causal.NewPCCast(causal.PCCastConfig{
		Self: id, Group: grp, Conn: rconn, Deliver: deliver,
		Patience: 10 * time.Millisecond,
		Tracer:   col.Tracer(id),
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestFigure1ScenarioPCCast is Figure 1 under PC-cast: entities sharing a
// data VAL through broadcast access messages converge on the same value,
// with causal order carried by the FIFO streams instead of per-message
// metadata.
func TestFigure1ScenarioPCCast(t *testing.T) {
	ids := []string{"e1", "e2", "e3"}
	grp := group.MustNew("fig1pc", ids)
	net := transport.NewChanNet(transport.FaultModel{MaxDelay: 3 * time.Millisecond, Seed: 61})
	defer func() { _ = net.Close() }()

	trace := obs.NewTrace()
	col, hist := newAuditedCollector()
	replicas := map[string]*core.Replica{}
	engines := map[string]*causal.PCCast{}
	defer func() {
		for _, e := range engines {
			_ = e.Close()
		}
	}()
	for _, id := range ids {
		rep, err := core.NewReplica(core.ReplicaConfig{
			Self: id, Initial: shareddata.NewCounter(0), Apply: shareddata.ApplyCounter,
			Tracer: col.Tracer(id),
		})
		if err != nil {
			t.Fatal(err)
		}
		replicas[id] = rep
		engines[id] = pccastFigureEngine(t, net, grp, id, 61, col, trace.Observer(id, rep.Deliver))
	}

	fe, err := core.NewFrontEnd("cli", engines["e1"])
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		op := shareddata.Inc()
		if _, err := fe.Submit(op.Op, op.Kind, op.Body); err != nil {
			t.Fatal(err)
		}
	}
	rd := shareddata.Read()
	if _, err := fe.Submit(rd.Op, rd.Kind, rd.Body); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		done := true
		for _, rep := range replicas {
			if rep.Applied() < 7 {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("entities did not converge")
		}
		time.Sleep(time.Millisecond)
	}
	if n, err := trace.SameDeliverySet(); err != nil || n != 7 {
		t.Fatalf("delivery sets: %d, %v", n, err)
	}
	ref, _ := replicas["e1"].ReadStable()
	for _, id := range ids[1:] {
		st, _ := replicas[id].ReadStable()
		if st.Digest() != ref.Digest() {
			t.Errorf("entity %s VAL %s, want %s", id, st.Digest(), ref.Digest())
		}
	}
	assertAuditClean(t, col, hist)
}

// TestFigure2ScenarioPCCast is Figure 2's computation under PC-cast. The
// explicit OccursAfter predicates still gate delivery (PCCast keeps the
// holdback for exactly the paths that bypass stream order), so the
// synchronization point agrees at every member.
func TestFigure2ScenarioPCCast(t *testing.T) {
	ids := []string{"ai", "aj", "ak"}
	grp := group.MustNew("fig2pc", ids)
	net := transport.NewChanNet(transport.FaultModel{MaxDelay: 4 * time.Millisecond, Seed: 67})
	defer func() { _ = net.Close() }()

	col, hist := newAuditedCollector()
	replicas := map[string]*core.Replica{}
	engines := map[string]*causal.PCCast{}
	defer func() {
		for _, e := range engines {
			_ = e.Close()
		}
	}()
	for _, id := range ids {
		rep, err := core.NewReplica(core.ReplicaConfig{
			Self: id, Initial: shareddata.NewCounter(0), Apply: shareddata.ApplyCounter,
			Tracer: col.Tracer(id),
		})
		if err != nil {
			t.Fatal(err)
		}
		replicas[id] = rep
		engines[id] = pccastFigureEngine(t, net, grp, id, 67, col, rep.Deliver)
	}

	mk := message.Message{Label: message.Label{Origin: "ak", Seq: 1}, Kind: message.KindNonCommutative, Op: "set", Body: []byte("10")}
	mi := message.Message{Label: message.Label{Origin: "ai", Seq: 1}, Deps: message.After(mk.Label), Kind: message.KindCommutative, Op: "inc"}
	mj := message.Message{Label: message.Label{Origin: "aj", Seq: 1}, Deps: message.After(mk.Label), Kind: message.KindCommutative, Op: "dec"}
	sync := message.Message{Label: message.Label{Origin: "aj", Seq: 2}, Deps: message.After(mi.Label, mj.Label), Kind: message.KindRead, Op: "rd"}
	for _, step := range []struct {
		from string
		m    message.Message
	}{{"ak", mk}, {"ai", mi}, {"aj", mj}, {"aj", sync}} {
		if err := engines[step.from].Broadcast(step.m); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		done := true
		for _, rep := range replicas {
			if rep.Cycle() < 2 {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sync point never reached")
		}
		time.Sleep(time.Millisecond)
	}
	histories := map[string][]core.StablePoint{}
	for id, rep := range replicas {
		histories[id] = rep.StablePoints()
	}
	audit := obs.AuditStablePoints(histories)
	if !audit.Consistent() || audit.Points != 2 {
		t.Fatalf("audit = %+v", audit)
	}
	st, _ := replicas["ai"].ReadStable()
	if st.Digest() != shareddata.NewCounter(10).Digest() {
		t.Errorf("agreed value %s, want counter:10", st.Digest())
	}
	assertAuditClean(t, col, hist)
}

// TestFigure3GraphFormsPCCast pushes Figure 3's diamond through live
// PCCast engines (the OSend original drives the tracer directly) and
// extracts the dependency-graph forms from the observed execution: the
// concurrent middle pair and the transitive AND-dependency survive the
// flood's arbitrary arrival orders.
func TestFigure3GraphFormsPCCast(t *testing.T) {
	ids := []string{"s", "a", "b"}
	grp := group.MustNew("fig3pc", ids)
	net := transport.NewChanNet(transport.FaultModel{MaxDelay: 2 * time.Millisecond, Seed: 71})
	defer func() { _ = net.Close() }()

	tr := obs.NewTrace()
	col, hist := newAuditedCollector()
	var mu sync.Mutex
	applied := map[string]int{}
	engines := map[string]*causal.PCCast{}
	defer func() {
		for _, e := range engines {
			_ = e.Close()
		}
	}()
	for _, id := range ids {
		id := id
		rec := tr.Observer(id, nil)
		engines[id] = pccastFigureEngine(t, net, grp, id, 71, col, func(m message.Message) {
			rec(m)
			mu.Lock()
			applied[id]++
			mu.Unlock()
		})
	}

	msgNode := message.Message{Label: message.Label{Origin: "s", Seq: 1}, Kind: message.KindNonCommutative, Op: "Msg"}
	m1 := message.Message{Label: message.Label{Origin: "a", Seq: 1}, Deps: message.After(msgNode.Label), Kind: message.KindCommutative, Op: "m1"}
	m2 := message.Message{Label: message.Label{Origin: "b", Seq: 1}, Deps: message.After(msgNode.Label), Kind: message.KindCommutative, Op: "m2"}
	msg2 := message.Message{Label: message.Label{Origin: "s", Seq: 2}, Deps: message.After(m1.Label, m2.Label), Kind: message.KindNonCommutative, Op: "Msg'"}
	for _, step := range []struct {
		from string
		m    message.Message
	}{{"s", msgNode}, {"a", m1}, {"b", m2}, {"s", msg2}} {
		if err := engines[step.from].Broadcast(step.m); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		done := len(applied) == len(ids)
		for _, n := range applied {
			if n < 4 {
				done = false
			}
		}
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("diamond never fully delivered")
		}
		time.Sleep(time.Millisecond)
	}
	g, err := tr.ExtractGraph()
	if err != nil {
		t.Fatal(err)
	}
	if !g.Concurrent(m1.Label, m2.Label) {
		t.Error("many-to-one dependents not concurrent")
	}
	if !g.HappensBefore(msgNode.Label, msg2.Label) {
		t.Error("transitive AND-dependency lost")
	}
	if lin := g.CountLinearizations(0); lin != 2 {
		t.Errorf("diamond admits %d orders, want 2", lin)
	}
	assertAuditClean(t, col, hist)
}

// TestFigure4TotalOrderLayerPCCast is Figure 4 under PC-cast: the
// total-ordering function sits on the constant-metadata causal layer and
// still orders spontaneous messages identically at all members.
func TestFigure4TotalOrderLayerPCCast(t *testing.T) {
	ids := []string{"a", "b", "c"}
	grp := group.MustNew("fig4pc", ids)
	net := transport.NewChanNet(transport.FaultModel{MaxDelay: 3 * time.Millisecond, Seed: 73})
	defer func() { _ = net.Close() }()

	type member struct {
		layer  *total.Sequencer
		engine *causal.PCCast
		mu     sync.Mutex
		order  []string
	}
	members := map[string]*member{}
	orderSnapshot := func(mb *member) []string {
		mb.mu.Lock()
		defer mb.mu.Unlock()
		return append([]string(nil), mb.order...)
	}
	defer func() {
		for _, m := range members {
			_ = m.layer.Close()
			_ = m.engine.Close()
		}
	}()
	col, hist := newAuditedCollector()
	for _, id := range ids {
		mb := &member{}
		sq, err := total.NewSequencer(total.Config{
			Self: id, Group: grp,
			Deliver: func(m message.Message) {
				mb.mu.Lock()
				mb.order = append(mb.order, m.Op)
				mb.mu.Unlock()
			},
			Tracer: col.Tracer(id),
		})
		if err != nil {
			t.Fatal(err)
		}
		eng := pccastFigureEngine(t, net, grp, id, 73, col, sq.Ingest)
		sq.Bind(eng)
		mb.layer = sq
		mb.engine = eng
		members[id] = mb
	}
	for i := 0; i < 5; i++ {
		for _, id := range ids {
			op := fmt.Sprintf("spont-%s-%d", id, i)
			if _, err := members[id].layer.ASend(op, message.KindNonCommutative, nil, message.Unconstrained()); err != nil {
				t.Fatal(err)
			}
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		done := true
		for _, mb := range members {
			if len(orderSnapshot(mb)) < 15 {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("total order never completed")
		}
		time.Sleep(time.Millisecond)
	}
	ref := orderSnapshot(members[ids[0]])
	for _, id := range ids[1:] {
		got := orderSnapshot(members[id])
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("member %s order diverges at %d: %s vs %s", id, i, got[i], ref[i])
			}
		}
	}
	assertAuditClean(t, col, hist)
}

// TestFigure5ArbitrationPCCast is Figure 5's LOCK/TFR arbitration over
// the total order over PC-cast; members agree on every holder.
func TestFigure5ArbitrationPCCast(t *testing.T) {
	ids := []string{"A", "B", "C"}
	grp := group.MustNew("fig5pc", ids)
	net := transport.NewChanNet(transport.FaultModel{MaxDelay: 2 * time.Millisecond, Seed: 79})
	defer func() { _ = net.Close() }()

	arbiters := map[string]*lockarb.Arbiter{}
	var logMu sync.Mutex
	grantLogs := map[string][]string{}
	logSnapshot := func(id string) []string {
		logMu.Lock()
		defer logMu.Unlock()
		return append([]string(nil), grantLogs[id]...)
	}
	var closers []func()
	defer func() {
		for _, c := range closers {
			c()
		}
	}()
	col, hist := newAuditedCollector()
	for _, id := range ids {
		id := id
		var arb *lockarb.Arbiter
		sq, err := total.NewSequencer(total.Config{
			Self: id, Group: grp,
			Deliver: func(m message.Message) { arb.Ingest(m) },
			Tracer:  col.Tracer(id),
		})
		if err != nil {
			t.Fatal(err)
		}
		eng := pccastFigureEngine(t, net, grp, id, 79, col, sq.Ingest)
		sq.Bind(eng)
		arb, err = lockarb.NewArbiter(lockarb.Config{
			Self: id, Group: grp, Layer: sq,
			OnGrant: func(holder string, cycle uint64) {
				logMu.Lock()
				grantLogs[id] = append(grantLogs[id], fmt.Sprintf("%s@%d", holder, cycle))
				logMu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		arbiters[id] = arb
		closers = append(closers, func() { _ = sq.Close(); _ = eng.Close() })
	}
	for _, id := range ids {
		if err := arbiters[id].Start(); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, len(ids))
	for _, id := range ids {
		go func(id string) {
			for s := 0; s < 2; s++ {
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
				if _, err := arbiters[id].Acquire(ctx); err != nil {
					cancel()
					done <- err
					return
				}
				if err := arbiters[id].Release(); err != nil {
					cancel()
					done <- err
					return
				}
				cancel()
			}
			done <- nil
		}(id)
	}
	for range ids {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(logSnapshot(ids[0])) >= 6 && len(logSnapshot(ids[1])) >= 6 && len(logSnapshot(ids[2])) >= 6 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	ref := logSnapshot(ids[0])
	if len(ref) < 6 {
		t.Fatalf("only %d grants observed", len(ref))
	}
	for _, id := range ids[1:] {
		got := logSnapshot(id)
		limit := len(ref)
		if len(got) < limit {
			limit = len(got)
		}
		for i := 0; i < limit; i++ {
			if got[i] != ref[i] {
				t.Fatalf("member %s grant %d = %s, want %s", id, i, got[i], ref[i])
			}
		}
	}
	assertAuditClean(t, col, hist)
}
