// Benchmarks regenerating every experiment of the reproduction (E1–E10 of
// DESIGN.md / EXPERIMENTS.md) plus the figure scenarios and the hot-path
// micro-benchmarks. Run all of them with:
//
//	go test -bench=. -benchmem
//
// Each experiment benchmark executes a reduced-size configuration of the
// corresponding runner (the full tables come from cmd/experiments) and
// reports the experiment's headline metric via b.ReportMetric.
package causalshare_test

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"causalshare/internal/causal"
	"causalshare/internal/core"
	"causalshare/internal/experiments"
	"causalshare/internal/flightrec"
	"causalshare/internal/graph"
	"causalshare/internal/group"
	"causalshare/internal/message"
	"causalshare/internal/reliable"
	"causalshare/internal/shareddata"
	"causalshare/internal/sim"
	"causalshare/internal/telemetry"
	"causalshare/internal/total"
	ctrace "causalshare/internal/trace"
	"causalshare/internal/transport"
	"causalshare/internal/vclock"
	"causalshare/internal/wal"
)

// tableCell extracts a float metric from an experiment table.
func tableCell(tbl experiments.Table, row int, col string) float64 {
	for i, c := range tbl.Columns {
		if c == col {
			v, err := strconv.ParseFloat(strings.TrimSuffix(tbl.Rows[row][i], "x"), 64)
			if err != nil {
				return 0
			}
			return v
		}
	}
	return 0
}

// BenchmarkCommutativeFractionSweep regenerates E1 (Table: latency vs f).
func BenchmarkCommutativeFractionSweep(b *testing.B) {
	cfg := experiments.DefaultE1()
	cfg.Ops = 600
	cfg.Fractions = []float64{0, 0.9, 1.0}
	var tbl experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.RunE1(cfg)
	}
	last := len(tbl.Rows) - 1
	b.ReportMetric(tableCell(tbl, 1, "causal mean ms"), "causal_ms_at_f0.9")
	b.ReportMetric(tableCell(tbl, 1, "merge mean ms"), "totalorder_ms_at_f0.9")
	b.ReportMetric(tableCell(tbl, last, "causal mean ms"), "causal_ms_at_f1.0")
}

// BenchmarkGroupSizeSweep regenerates E2 (Table: latency vs n).
func BenchmarkGroupSizeSweep(b *testing.B) {
	cfg := experiments.DefaultE2()
	cfg.Ops = 400
	cfg.Sizes = []int{2, 8, 16}
	var tbl experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.RunE2(cfg)
	}
	last := len(tbl.Rows) - 1
	b.ReportMetric(tableCell(tbl, last, "causal mean ms"), "causal_ms_n16")
	b.ReportMetric(tableCell(tbl, last, "merge mean ms"), "totalorder_ms_n16")
}

// BenchmarkStablePointCadence regenerates E3 (Table: read latency vs
// activity size f_gamma).
func BenchmarkStablePointCadence(b *testing.B) {
	cfg := experiments.DefaultE3()
	cfg.Cycles = 25
	cfg.ActivitySz = []int{1, 20}
	cfg.Reads = 150
	var tbl experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.RunE3(cfg)
	}
	b.ReportMetric(tableCell(tbl, 0, "read mean ms"), "read_ms_fg1")
	b.ReportMetric(tableCell(tbl, 1, "read mean ms"), "read_ms_fg20")
}

// BenchmarkAgreementOverhead regenerates E4 (Table: explicit agreement
// messages per sync point vs free local stable points).
func BenchmarkAgreementOverhead(b *testing.B) {
	cfg := experiments.E4Config{Sizes: []int{3, 8}, SyncPoints: 20}
	var tbl experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.RunE4(cfg)
	}
	b.ReportMetric(tableCell(tbl, 1, "explicit msgs/sync"), "explicit_msgs_per_sync_n8")
	b.ReportMetric(0, "stablepoint_msgs_per_sync")
}

// BenchmarkQueryContextProtocol regenerates E5 (Table: discard rate and
// asynchrony win of the §5.2 application-specific protocol).
func BenchmarkQueryContextProtocol(b *testing.B) {
	cfg := experiments.DefaultE5()
	cfg.Queries = 400
	cfg.UpdateRates = []float64{0.05, 0.3}
	var tbl experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.RunE5(cfg)
	}
	b.ReportMetric(tableCell(tbl, 0, "discard %"), "discard_pct_low_upd")
	b.ReportMetric(tableCell(tbl, 0, "asynchrony win"), "asynchrony_win_x")
}

// BenchmarkBufferOccupancy regenerates E6 (Table: buffer occupancy,
// OSend vs CBCAST, vs jitter).
func BenchmarkBufferOccupancy(b *testing.B) {
	cfg := experiments.DefaultE6()
	cfg.Ops = 500
	cfg.Jitters = []float64{20}
	var tbl experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.RunE6(cfg)
	}
	b.ReportMetric(tableCell(tbl, 0, "osend max buf"), "osend_maxbuf_20ms")
	b.ReportMetric(tableCell(tbl, 0, "cbcast max buf"), "cbcast_maxbuf_20ms")
}

// BenchmarkWireOverhead regenerates E7 (Table: ordering metadata bytes vs
// group size).
func BenchmarkWireOverhead(b *testing.B) {
	cfg := experiments.DefaultE7()
	var tbl experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.RunE7(cfg)
	}
	last := len(tbl.Rows) - 1
	b.ReportMetric(tableCell(tbl, last, "osend dep bytes"), "osend_bytes_n64")
	b.ReportMetric(tableCell(tbl, last, "cbcast clock bytes"), "cbcast_bytes_n64")
}

// BenchmarkConcurrencyDegree regenerates E8 (Table: §5.1 card-game
// concurrency under relaxed vs strict ordering).
func BenchmarkConcurrencyDegree(b *testing.B) {
	cfg := experiments.E8Config{Players: []int{4, 8}, K: 2, LinCap: 20000}
	var tbl experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.RunE8(cfg)
	}
	b.ReportMetric(tableCell(tbl, 1, "relaxed width"), "relaxed_width_8p")
}

// BenchmarkLockCycles regenerates E9 (Table: §6.2 arbitration rotation
// latency) on the live stack.
func BenchmarkLockCycles(b *testing.B) {
	cfg := experiments.E9Config{Sizes: []int{3}, Rotations: 2}
	var tbl experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.RunE9(cfg)
	}
	b.ReportMetric(tableCell(tbl, 0, "rotation mean ms"), "rotation_ms_n3")
	b.ReportMetric(tableCell(tbl, 0, "frames/grant"), "frames_per_grant_n3")
}

// BenchmarkAblations regenerates E10 (Table: design ablations).
func BenchmarkAblations(b *testing.B) {
	cfg := experiments.DefaultE10()
	cfg.Ops = 400
	cfg.Probes = 60
	cfg.Heartbeats = []float64{2, 10}
	var tbl experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.RunE10(cfg)
	}
	b.ReportMetric(tableCell(tbl, 0, "mean ms"), "merge_ms")
	b.ReportMetric(tableCell(tbl, 1, "mean ms"), "sequencer_ms")
}

// BenchmarkItemScoping regenerates E11 (Table: §5.1 item-granularity
// commutativity vs global overwrite serialization).
func BenchmarkItemScoping(b *testing.B) {
	cfg := experiments.DefaultE11()
	cfg.Writes = 120
	cfg.Keys = []int{1, 8}
	var tbl experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.RunE11(cfg)
	}
	b.ReportMetric(tableCell(tbl, 1, "naive mean ms"), "naive_ms_8keys")
	b.ReportMetric(tableCell(tbl, 1, "scoped mean ms"), "scoped_ms_8keys")
	b.ReportMetric(tableCell(tbl, 1, "scoped width"), "scoped_width_8keys")
}

// BenchmarkFig2SyncPoint runs the Figure 2 scenario — mk -> ||{m1',m2'}
// -> mj' — on the live stack, measuring the full cycle to the
// synchronization point at all members.
func BenchmarkFig2SyncPoint(b *testing.B) {
	ids := []string{"ai", "aj", "ak"}
	grp := group.MustNew("fig2", ids)
	net := transport.NewChanNet(transport.FaultModel{})
	defer func() { _ = net.Close() }()
	replicas := make(map[string]*core.Replica)
	engines := make(map[string]*causal.OSend)
	for _, id := range ids {
		rep, err := core.NewReplica(core.ReplicaConfig{
			Self: id, Initial: shareddata.NewCounter(0), Apply: shareddata.ApplyCounter,
		})
		if err != nil {
			b.Fatal(err)
		}
		conn, err := net.Attach(id)
		if err != nil {
			b.Fatal(err)
		}
		eng, err := causal.NewOSend(causal.OSendConfig{
			Self: id, Group: grp, Conn: conn, Deliver: rep.Deliver,
		})
		if err != nil {
			b.Fatal(err)
		}
		replicas[id] = rep
		engines[id] = eng
	}
	defer func() {
		for _, e := range engines {
			_ = e.Close()
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := uint64(i + 1)
		mk := message.Message{Label: message.Label{Origin: "ak", Seq: seq}, Kind: message.KindNonCommutative, Op: "set"}
		m1 := message.Message{Label: message.Label{Origin: "ai", Seq: 2 * seq}, Deps: message.After(mk.Label), Kind: message.KindCommutative, Op: "inc"}
		m2 := message.Message{Label: message.Label{Origin: "aj", Seq: seq}, Deps: message.After(mk.Label), Kind: message.KindCommutative, Op: "inc"}
		mj := message.Message{Label: message.Label{Origin: "ai", Seq: 2*seq + 1}, Deps: message.After(m1.Label, m2.Label), Kind: message.KindRead, Op: "rd"}
		if err := engines["ak"].Broadcast(mk); err != nil {
			b.Fatal(err)
		}
		if err := engines["ai"].Broadcast(m1); err != nil {
			b.Fatal(err)
		}
		if err := engines["aj"].Broadcast(m2); err != nil {
			b.Fatal(err)
		}
		if err := engines["ai"].Broadcast(mj); err != nil {
			b.Fatal(err)
		}
		want := uint64(2 * (i + 1))
		for _, rep := range replicas {
			for rep.Cycle() < want {
				time.Sleep(50 * time.Microsecond)
			}
		}
	}
}

// BenchmarkASend measures live total-order layer throughput (Figure 4's
// interposed function), one ordered broadcast per iteration across three
// members, sequencer variant.
func BenchmarkASend(b *testing.B) {
	ids := []string{"a", "bb", "c"}
	grp := group.MustNew("asend", ids)
	net := transport.NewChanNet(transport.FaultModel{})
	defer func() { _ = net.Close() }()
	delivered := make(chan struct{}, 1024)
	stacks := buildTotalStacks(b, grp, net, ids, delivered)
	defer func() {
		for _, s := range stacks.close {
			s()
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stacks.asend[0]("op", nil); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < len(ids); j++ {
			<-delivered
		}
	}
}

type totalStacks struct {
	asend []func(op string, body []byte) (message.Label, error)
	close []func()
}

// newSequencer builds a total.Sequencer instance for one member.
func newSequencer(id string, grp *group.Group, deliver causal.DeliverFunc) (*total.Sequencer, error) {
	return total.NewSequencer(total.Config{Self: id, Group: grp, Deliver: deliver})
}

func buildTotalStacks(b *testing.B, grp *group.Group, net transport.Network, ids []string, delivered chan struct{}) totalStacks {
	b.Helper()
	var out totalStacks
	for _, id := range ids {
		sq, err := newSequencer(id, grp, func(message.Message) {
			delivered <- struct{}{}
		})
		if err != nil {
			b.Fatal(err)
		}
		conn, err := net.Attach(id)
		if err != nil {
			b.Fatal(err)
		}
		eng, err := causal.NewOSend(causal.OSendConfig{
			Self: id, Group: grp, Conn: conn, Deliver: sq.Ingest,
		})
		if err != nil {
			b.Fatal(err)
		}
		sq.Bind(eng)
		sqCopy := sq
		engCopy := eng
		out.asend = append(out.asend, func(op string, body []byte) (message.Label, error) {
			return sqCopy.ASend(op, message.KindNonCommutative, body, message.Unconstrained())
		})
		out.close = append(out.close, func() {
			_ = sqCopy.Close()
			_ = engCopy.Close()
		})
	}
	return out
}

// Micro-benchmarks of the hot paths.

// benchMessage is a representative mid-size message for codec benchmarks:
// two dependencies and a small payload, matching the E-series workloads.
func benchMessage() message.Message {
	return message.Message{
		Label: message.Label{Origin: "node-07~cli", Seq: 123456},
		Deps: message.After(
			message.Label{Origin: "node-01~cli", Seq: 42},
			message.Label{Origin: "node-02~cli", Seq: 57},
		),
		Kind: message.KindCommutative,
		Op:   "inc",
		Body: []byte("payload-bytes"),
	}
}

// BenchmarkMarshal measures one-way encode cost and allocs/op.
func BenchmarkMarshal(b *testing.B) {
	m := benchMessage()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnmarshal measures one-way decode cost and allocs/op.
func BenchmarkUnmarshal(b *testing.B) {
	data, err := benchMessage().MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var got message.Message
		if err := got.UnmarshalBinary(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBroadcastFanout measures the full send→transport→deliver
// pipeline: one OSend sender broadcasting dependency-free messages to an
// n-member group over a perfect ChanNet, timed until every member has
// delivered every message. allocs/op covers the whole fan-out, which is
// what the zero-allocation work targets. Telemetry is ENABLED (shared
// registry across transport and engines, no event ring) so the reported
// allocs/op also guards the instruments' zero-allocation property — the
// CI bench smoke fails the build if this benchmark reports >0 allocs/op.
func BenchmarkBroadcastFanout(b *testing.B) {
	for _, n := range []int{2, 8, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ids := make([]string, n)
			for i := range ids {
				ids[i] = fmt.Sprintf("m%02d", i)
			}
			grp := group.MustNew("fanout", ids)
			reg := telemetry.NewRegistry()
			net := transport.NewChanNetObserved(transport.FaultModel{}, reg)
			defer func() { _ = net.Close() }()
			var delivered atomic.Uint64
			engines := make([]*causal.OSend, 0, n)
			for _, id := range ids {
				conn, err := net.Attach(id)
				if err != nil {
					b.Fatal(err)
				}
				eng, err := causal.NewOSend(causal.OSendConfig{
					Self: id, Group: grp, Conn: conn,
					Deliver:   func(message.Message) { delivered.Add(1) },
					Telemetry: reg,
				})
				if err != nil {
					b.Fatal(err)
				}
				engines = append(engines, eng)
			}
			defer func() {
				for _, e := range engines {
					_ = e.Close()
				}
			}()
			lab := message.NewLabeler(ids[0])
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := message.Message{Label: lab.Next(), Kind: message.KindCommutative, Op: "inc"}
				if err := engines[0].Broadcast(m); err != nil {
					b.Fatal(err)
				}
			}
			target := uint64(n) * uint64(b.N)
			for delivered.Load() < target {
				time.Sleep(20 * time.Microsecond)
			}
		})
	}
}

// BenchmarkBroadcastFanoutObserved repeats the fan-out pipeline with the
// FULL observability plane armed, in its deployment shape: one registry
// and one event ring per member (so every engine registers its per-peer
// lag funcs and visibility histograms without family collisions), plus
// the observed transport. The measured path therefore includes SentAt
// stamping, the wire trailer encode/decode, per-peer RouteOrigin
// resolution, and a visibility-histogram observation at every remote
// delivery. The "Fanout" name keeps it under the CI bench-smoke
// zero-alloc gate: watching the cluster must cost cycles, never garbage.
func BenchmarkBroadcastFanoutObserved(b *testing.B) {
	for _, n := range []int{2, 8, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ids := make([]string, n)
			for i := range ids {
				ids[i] = fmt.Sprintf("m%02d", i)
			}
			grp := group.MustNew("fanout", ids)
			netReg := telemetry.NewRegistry()
			net := transport.NewChanNetObserved(transport.FaultModel{}, netReg)
			defer func() { _ = net.Close() }()
			var delivered atomic.Uint64
			regs := make([]*telemetry.Registry, 0, n)
			engines := make([]*causal.OSend, 0, n)
			for _, id := range ids {
				conn, err := net.Attach(id)
				if err != nil {
					b.Fatal(err)
				}
				reg := telemetry.NewRegistry()
				eng, err := causal.NewOSend(causal.OSendConfig{
					Self: id, Group: grp, Conn: conn,
					Deliver:   func(message.Message) { delivered.Add(1) },
					Telemetry: reg,
					Trace:     telemetry.NewRing(1024),
				})
				if err != nil {
					b.Fatal(err)
				}
				regs = append(regs, reg)
				engines = append(engines, eng)
			}
			defer func() {
				for _, e := range engines {
					_ = e.Close()
				}
			}()
			lab := message.NewLabeler(ids[0])
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := message.Message{Label: lab.Next(), Kind: message.KindCommutative, Op: "inc"}
				if err := engines[0].Broadcast(m); err != nil {
					b.Fatal(err)
				}
			}
			target := uint64(n) * uint64(b.N)
			for delivered.Load() < target {
				time.Sleep(20 * time.Microsecond)
			}
			b.StopTimer()
			// Prove the observed path actually ran: every non-sender member
			// recorded one visibility sample per broadcast from the origin.
			for i, reg := range regs {
				if i == 0 {
					continue
				}
				snap := reg.Snapshot()
				var count uint64
				for _, h := range snap.Histograms {
					if h.Name == "causal_visibility_seconds" {
						count += h.Count
					}
				}
				if count < uint64(b.N) {
					b.Fatalf("member %s observed %d visibility samples, want >= %d",
						ids[i], count, b.N)
				}
			}
		})
	}
}

// BenchmarkBroadcastFanoutDurable repeats the fan-out pipeline with a
// write-ahead log armed on every member in PolicyAsync — the deployment
// shape for latency-sensitive groups, where the background loop flushes
// and the broadcast path only encodes into the WAL's buffer. The "Fanout"
// name keeps it under the CI bench-smoke zero-alloc gate: durability in
// async mode must cost cycles, never garbage.
func BenchmarkBroadcastFanoutDurable(b *testing.B) {
	for _, n := range []int{2, 8, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ids := make([]string, n)
			for i := range ids {
				ids[i] = fmt.Sprintf("m%02d", i)
			}
			grp := group.MustNew("fanout", ids)
			reg := telemetry.NewRegistry()
			net := transport.NewChanNetObserved(transport.FaultModel{}, reg)
			defer func() { _ = net.Close() }()
			var delivered atomic.Uint64
			engines := make([]*causal.OSend, 0, n)
			logs := make([]*wal.WAL, 0, n)
			for _, id := range ids {
				conn, err := net.Attach(id)
				if err != nil {
					b.Fatal(err)
				}
				wlog, err := wal.Open(wal.Options{
					Dir:    id,
					FS:     wal.NewMemFS(1, wal.Faults{}),
					Policy: wal.PolicyAsync,
				})
				if err != nil {
					b.Fatal(err)
				}
				logs = append(logs, wlog)
				eng, err := causal.NewOSend(causal.OSendConfig{
					Self: id, Group: grp, Conn: conn,
					Deliver:   func(message.Message) { delivered.Add(1) },
					Telemetry: reg,
					Journal:   wlog,
				})
				if err != nil {
					b.Fatal(err)
				}
				engines = append(engines, eng)
			}
			defer func() {
				for _, e := range engines {
					_ = e.Close()
				}
				for _, w := range logs {
					_ = w.Close()
				}
			}()
			lab := message.NewLabeler(ids[0])
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := message.Message{Label: lab.Next(), Kind: message.KindCommutative, Op: "inc"}
				if err := engines[0].Broadcast(m); err != nil {
					b.Fatal(err)
				}
			}
			target := uint64(n) * uint64(b.N)
			for delivered.Load() < target {
				time.Sleep(20 * time.Microsecond)
			}
		})
	}
}

// BenchmarkDurableBroadcastPolicy is the broadcast-latency half of
// experiment E17 (`make bench-wal`): the n=8 fan-out pipeline with a
// per-member WAL on the real filesystem under each sync policy, plus a
// no-WAL baseline. The async and interval rows should sit within noise
// of the baseline (the append path only encodes into a buffer); the
// each row pays one fsync per journaled record inside the delivery path
// and is the price of zero-loss durability.
func BenchmarkDurableBroadcastPolicy(b *testing.B) {
	const n = 8
	for _, row := range []struct {
		name   string
		armed  bool
		policy wal.Policy
	}{
		{"off", false, wal.PolicyAsync},
		{"async", true, wal.PolicyAsync},
		{"interval", true, wal.PolicyInterval},
		{"each", true, wal.PolicyEach},
	} {
		b.Run("policy="+row.name, func(b *testing.B) {
			ids := make([]string, n)
			for i := range ids {
				ids[i] = fmt.Sprintf("m%02d", i)
			}
			grp := group.MustNew("fanout", ids)
			net := transport.NewChanNet(transport.FaultModel{})
			defer func() { _ = net.Close() }()
			var delivered atomic.Uint64
			engines := make([]*causal.OSend, 0, n)
			logs := make([]*wal.WAL, 0, n)
			for _, id := range ids {
				conn, err := net.Attach(id)
				if err != nil {
					b.Fatal(err)
				}
				var wlog *wal.WAL
				if row.armed {
					wlog, err = wal.Open(wal.Options{Dir: b.TempDir(), Policy: row.policy})
					if err != nil {
						b.Fatal(err)
					}
					logs = append(logs, wlog)
				}
				eng, err := causal.NewOSend(causal.OSendConfig{
					Self: id, Group: grp, Conn: conn,
					Deliver: func(message.Message) { delivered.Add(1) },
					Journal: wlog,
				})
				if err != nil {
					b.Fatal(err)
				}
				engines = append(engines, eng)
			}
			defer func() {
				for _, e := range engines {
					_ = e.Close()
				}
				for _, w := range logs {
					_ = w.Close()
				}
			}()
			lab := message.NewLabeler(ids[0])
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := message.Message{Label: lab.Next(), Kind: message.KindCommutative, Op: "inc"}
				if err := engines[0].Broadcast(m); err != nil {
					b.Fatal(err)
				}
			}
			target := uint64(n) * uint64(b.N)
			for delivered.Load() < target {
				time.Sleep(20 * time.Microsecond)
			}
		})
	}
}

// BenchmarkBroadcastFanoutBlackBox repeats the fan-out pipeline with the
// full forensic plane armed on every member: the always-on trace
// collector (SampleEvery 1, so every broadcast gets a span and the
// delivery auditor runs) plus a per-member flight recorder wired into the
// engine, so every send, receive, and delivery also lands in the black
// box's fixed ring. The "Fanout" name keeps it under the CI bench-smoke
// zero-alloc gate: a flight recorder you cannot leave on in production is
// a flight recorder that is off during the crash, so recording must cost
// cycles, never garbage. The pre-timer warmup cycles the trace store past
// MaxTraces so the timed region runs on recycled span records; the flight
// ring is preallocated and symbol-interned, so it is steady-state from
// the first record.
func BenchmarkBroadcastFanoutBlackBox(b *testing.B) {
	const maxTraces = 64
	for _, n := range []int{2, 8, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ids := make([]string, n)
			for i := range ids {
				ids[i] = fmt.Sprintf("m%02d", i)
			}
			grp := group.MustNew("fanout", ids)
			netReg := telemetry.NewRegistry()
			col := ctrace.NewCollector(ctrace.Config{
				MaxTraces:   maxTraces,
				SampleEvery: 1,
				Telemetry:   netReg,
			})
			// The deployment shape: one recorder set, fed by the collector's
			// hooks (send/recv/deliver) and by each engine directly
			// (holdback, fetch).
			flight := flightrec.NewSet(flightrec.Config{})
			col.SetFlight(flight)
			net := transport.NewChanNetObserved(transport.FaultModel{}, netReg)
			defer func() { _ = net.Close() }()
			var delivered atomic.Uint64
			boxes := make([]*flightrec.Recorder, 0, n)
			engines := make([]*causal.OSend, 0, n)
			for _, id := range ids {
				conn, err := net.Attach(id)
				if err != nil {
					b.Fatal(err)
				}
				reg := telemetry.NewRegistry()
				box := flight.For(id)
				eng, err := causal.NewOSend(causal.OSendConfig{
					Self: id, Group: grp, Conn: conn,
					Deliver:   func(message.Message) { delivered.Add(1) },
					Telemetry: reg,
					Tracer:    col.Tracer(id),
					Flight:    box,
				})
				if err != nil {
					b.Fatal(err)
				}
				boxes = append(boxes, box)
				engines = append(engines, eng)
			}
			defer func() {
				for _, e := range engines {
					_ = e.Close()
				}
			}()
			lab := message.NewLabeler(ids[0])
			send := func(count int) {
				start := delivered.Load()
				for i := 0; i < count; i++ {
					m := message.Message{Label: lab.Next(), Kind: message.KindCommutative, Op: "inc"}
					if err := engines[0].Broadcast(m); err != nil {
						b.Fatal(err)
					}
				}
				target := start + uint64(n)*uint64(count)
				for delivered.Load() < target {
					time.Sleep(20 * time.Microsecond)
				}
			}
			// Warm past the trace-store bound so the timed region runs
			// entirely on recycled trace and span records.
			send(3 * maxTraces)
			b.ReportAllocs()
			b.ResetTimer()
			send(b.N)
			b.StopTimer()
			if col.ViolationCount() != 0 {
				b.Fatalf("audit flagged the fan-out: %v", col.Violations())
			}
			// Prove the black boxes actually recorded the flight: every
			// member's ring holds records, and a snapshot decodes.
			for i, box := range boxes {
				if box.Len() == 0 {
					b.Fatalf("member %s flight ring is empty", ids[i])
				}
				if d := box.Snapshot(); d.Member != ids[i] || len(d.Records) == 0 {
					b.Fatalf("member %s snapshot is empty or mislabeled", ids[i])
				}
			}
		})
	}
}

// BenchmarkBroadcastFanoutTraced repeats the fan-out pipeline with the
// causal trace collector attached in the three operating modes of E13:
// off (nil tracer through the same config path), head-based sampling of
// one activity in sixteen, and always-on. The "Fanout" name keeps it
// under the CI bench-smoke zero-alloc gate: steady-state tracing must
// not allocate, which the bounded store's pooling provides once the
// eviction queue has cycled — the pre-timer warmup drives it past
// MaxTraces so the timed region only ever reuses pooled records.
func BenchmarkBroadcastFanoutTraced(b *testing.B) {
	const n = 8
	const maxTraces = 64
	modes := []struct {
		name   string
		traced bool
		sample int
	}{
		{name: "off", traced: false},
		{name: "sampled16", traced: true, sample: 16},
		{name: "always", traced: true, sample: 1},
	}
	for _, mode := range modes {
		b.Run("mode="+mode.name, func(b *testing.B) {
			ids := make([]string, n)
			for i := range ids {
				ids[i] = fmt.Sprintf("m%02d", i)
			}
			grp := group.MustNew("fanout", ids)
			reg := telemetry.NewRegistry()
			var col *ctrace.Collector
			if mode.traced {
				col = ctrace.NewCollector(ctrace.Config{
					MaxTraces:   maxTraces,
					SampleEvery: mode.sample,
					Telemetry:   reg,
				})
			}
			net := transport.NewChanNetObserved(transport.FaultModel{}, reg)
			defer func() { _ = net.Close() }()
			var delivered atomic.Uint64
			engines := make([]*causal.OSend, 0, n)
			for _, id := range ids {
				conn, err := net.Attach(id)
				if err != nil {
					b.Fatal(err)
				}
				eng, err := causal.NewOSend(causal.OSendConfig{
					Self: id, Group: grp, Conn: conn,
					Deliver:   func(message.Message) { delivered.Add(1) },
					Telemetry: reg,
					Tracer:    col.Tracer(id),
				})
				if err != nil {
					b.Fatal(err)
				}
				engines = append(engines, eng)
			}
			defer func() {
				for _, e := range engines {
					_ = e.Close()
				}
			}()
			lab := message.NewLabeler(ids[0])
			send := func(count int) {
				start := delivered.Load()
				for i := 0; i < count; i++ {
					m := message.Message{Label: lab.Next(), Kind: message.KindCommutative, Op: "inc"}
					if err := engines[0].Broadcast(m); err != nil {
						b.Fatal(err)
					}
				}
				target := start + uint64(n)*uint64(count)
				for delivered.Load() < target {
					time.Sleep(20 * time.Microsecond)
				}
			}
			// Warm past the trace-store bound so the timed region runs
			// entirely on recycled trace and span records.
			send(3 * maxTraces)
			b.ReportAllocs()
			b.ResetTimer()
			send(b.N)
			b.StopTimer()
			if col != nil && col.ViolationCount() != 0 {
				b.Fatalf("audit flagged the fan-out: %v", col.Violations())
			}
		})
	}
}

// BenchmarkBroadcastFanoutReliable repeats the fan-out pipeline with the
// per-link reliability sublayer wrapped around every connection on a
// lossless link. The "Fanout" name keeps it under the CI bench-smoke
// zero-alloc gate: sequencing, ack piggybacking and duplicate tracking
// must ride the pooled-frame hot path without allocating, so reliability
// costs cycles, never garbage, when the network behaves.
func BenchmarkBroadcastFanoutReliable(b *testing.B) {
	for _, n := range []int{2, 8, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ids := make([]string, n)
			for i := range ids {
				ids[i] = fmt.Sprintf("m%02d", i)
			}
			grp := group.MustNew("fanout", ids)
			reg := telemetry.NewRegistry()
			net := transport.NewChanNetObserved(transport.FaultModel{}, reg)
			defer func() { _ = net.Close() }()
			var delivered atomic.Uint64
			engines := make([]*causal.OSend, 0, n)
			for _, id := range ids {
				conn, err := net.Attach(id)
				if err != nil {
					b.Fatal(err)
				}
				// Lossless link: shed timeouts are pushed out so scheduler
				// hiccups under -benchtime pressure never drop a peer.
				rconn := reliable.Wrap(conn, grp.Others(id), reliable.Config{
					Window:       1024,
					StallTimeout: time.Hour,
					ShedAfter:    time.Hour,
					Seed:         1,
					Telemetry:    reg,
				})
				eng, err := causal.NewOSend(causal.OSendConfig{
					Self: id, Group: grp, Conn: rconn,
					Deliver:   func(message.Message) { delivered.Add(1) },
					Telemetry: reg,
				})
				if err != nil {
					b.Fatal(err)
				}
				engines = append(engines, eng)
			}
			defer func() {
				for _, e := range engines {
					_ = e.Close()
				}
			}()
			lab := message.NewLabeler(ids[0])
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := message.Message{Label: lab.Next(), Kind: message.KindCommutative, Op: "inc"}
				if err := engines[0].Broadcast(m); err != nil {
					b.Fatal(err)
				}
			}
			target := uint64(n) * uint64(b.N)
			for delivered.Load() < target {
				time.Sleep(20 * time.Microsecond)
			}
		})
	}
}

// BenchmarkBroadcastFanoutPCCast repeats the fan-out pipeline under the
// PC-broadcast engine with the reliability sublayer providing its FIFO
// links. The "Fanout" name keeps it under the CI bench-smoke zero-alloc
// gate: the constant-metadata hot path — PC header encode/decode, the
// outbox hand-off to the sender goroutine, forward-on-first-receipt, and
// the link-layer sequencing underneath — must ride pooled frames without
// allocating, so the flood costs cycles and bandwidth, never garbage.
func BenchmarkBroadcastFanoutPCCast(b *testing.B) {
	for _, n := range []int{2, 8} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ids := make([]string, n)
			for i := range ids {
				ids[i] = fmt.Sprintf("m%02d", i)
			}
			grp := group.MustNew("fanout", ids)
			reg := telemetry.NewRegistry()
			net := transport.NewChanNetObserved(transport.FaultModel{}, reg)
			defer func() { _ = net.Close() }()
			var delivered atomic.Uint64
			engines := make([]*causal.PCCast, 0, n)
			for _, id := range ids {
				conn, err := net.Attach(id)
				if err != nil {
					b.Fatal(err)
				}
				// Lossless link: shed timeouts are pushed out so scheduler
				// hiccups under -benchtime pressure never drop a peer.
				rconn := reliable.Wrap(conn, grp.Others(id), reliable.Config{
					Window:       1024,
					AckEvery:     8,
					StallTimeout: time.Hour,
					ShedAfter:    time.Hour,
					Seed:         1,
					Telemetry:    reg,
				})
				eng, err := causal.NewPCCast(causal.PCCastConfig{
					Self: id, Group: grp, Conn: rconn,
					Deliver:   func(message.Message) { delivered.Add(1) },
					Telemetry: reg,
				})
				if err != nil {
					b.Fatal(err)
				}
				engines = append(engines, eng)
			}
			defer func() {
				for _, e := range engines {
					_ = e.Close()
				}
			}()
			lab := message.NewLabeler(ids[0])
			// Warm the flood once so link establishment and pool growth
			// happen outside the timed region.
			m := message.Message{Label: lab.Next(), Kind: message.KindCommutative, Op: "inc"}
			if err := engines[0].Broadcast(m); err != nil {
				b.Fatal(err)
			}
			for delivered.Load() < uint64(n) {
				time.Sleep(20 * time.Microsecond)
			}
			base := delivered.Load()
			b.ReportAllocs()
			b.ResetTimer()
			// Paced: each iteration waits for its own flood to deliver
			// everywhere before the next broadcast, so ns/op is end-to-end
			// flood latency and in-flight frames stay bounded — an unpaced
			// burst would pile the whole b.N into the outbox and reliable
			// windows, starving the frame pool it is here to gate.
			for i := 0; i < b.N; i++ {
				m := message.Message{Label: lab.Next(), Kind: message.KindCommutative, Op: "inc"}
				if err := engines[0].Broadcast(m); err != nil {
					b.Fatal(err)
				}
				target := base + uint64(n)*uint64(i+1)
				for delivered.Load() < target {
					runtime.Gosched()
				}
			}
		})
	}
}

// BenchmarkBroadcastScale measures the fan-out pipeline for all three
// causal engines across group sizes up to n=256, reporting the E15
// metadata metrics per row: ordering-metadata bytes per wire frame and
// wire frames per broadcast. A pre-timer round in which every member
// broadcasts once populates CBCast's vector clocks with all n origins, so
// the timed broadcasts carry the steady-state O(n) stamps the scaling
// claim is about, while the PC header stays constant-size. OSend's
// metadata is workload-dependent: a single-sender chain declares no
// OccursAfter labels, so its rows read ~1 B/frame here — its O(n)
// behaviour under all-to-all causality is E15's job. (No "Fanout" in the
// name: the n=256 rows are about scaling curves, not the zero-alloc gate
// — BENCH_scale.json publishes them via the bench-scale target.)
func BenchmarkBroadcastScale(b *testing.B) {
	for _, engine := range []string{"cbcast", "osend", "pccast"} {
		for _, n := range []int{4, 16, 64, 256} {
			b.Run(fmt.Sprintf("engine=%s/n=%d", engine, n), func(b *testing.B) {
				ids := make([]string, n)
				for i := range ids {
					ids[i] = fmt.Sprintf("m%03d", i)
				}
				grp := group.MustNew("scale", ids)
				reg := telemetry.NewRegistry()
				net := transport.NewChanNetObserved(transport.FaultModel{}, reg)
				defer func() { _ = net.Close() }()
				var delivered atomic.Uint64
				deliver := func(message.Message) { delivered.Add(1) }
				engines := make([]causal.Broadcaster, 0, n)
				for _, id := range ids {
					conn, err := net.Attach(id)
					if err != nil {
						b.Fatal(err)
					}
					var eng causal.Broadcaster
					switch engine {
					case "cbcast":
						eng, err = causal.NewCBCast(causal.CBCastConfig{
							Self: id, Group: grp, Conn: conn, Deliver: deliver, Telemetry: reg,
						})
					case "osend":
						eng, err = causal.NewOSend(causal.OSendConfig{
							Self: id, Group: grp, Conn: conn, Deliver: deliver, Telemetry: reg,
						})
					case "pccast":
						eng, err = causal.NewPCCast(causal.PCCastConfig{
							Self: id, Group: grp, Conn: conn, Deliver: deliver, Telemetry: reg,
						})
					}
					if err != nil {
						b.Fatal(err)
					}
					engines = append(engines, eng)
				}
				defer func() {
					for _, e := range engines {
						_ = e.Close()
					}
				}()
				// All-origin warmup round, outside the timer.
				for i, e := range engines {
					m := message.Message{Label: message.Label{Origin: ids[i], Seq: 1}, Kind: message.KindCommutative, Op: "inc"}
					if err := e.Broadcast(m); err != nil {
						b.Fatal(err)
					}
				}
				for delivered.Load() < uint64(n)*uint64(n) {
					time.Sleep(50 * time.Microsecond)
				}
				base := delivered.Load()
				before := reg.Snapshot()
				b.ResetTimer()
				// Paced like the fan-out benchmarks: ns/op is one broadcast's
				// end-to-end delivery latency at size n, and the pccast flood
				// (65 280 frames per op at n=256) never piles up unbounded.
				for i := 0; i < b.N; i++ {
					m := message.Message{Label: message.Label{Origin: ids[0], Seq: uint64(i + 2)}, Kind: message.KindCommutative, Op: "inc"}
					if err := engines[0].Broadcast(m); err != nil {
						b.Fatal(err)
					}
					target := base + uint64(n)*uint64(i+1)
					for delivered.Load() < target {
						runtime.Gosched()
					}
				}
				b.StopTimer()
				after := reg.Snapshot()
				frames := float64(after.Get("causal_meta_frames_total") - before.Get("causal_meta_frames_total"))
				bytes := float64(after.Get("causal_meta_bytes_total") - before.Get("causal_meta_bytes_total"))
				ops := float64(b.N)
				if frames > 0 {
					b.ReportMetric(bytes/frames, "metaB/frame")
				}
				b.ReportMetric(frames/ops, "frames/op")
			})
		}
	}
}

// BenchmarkReliableLossSweep measures the fan-out pipeline with the
// reliability sublayer repairing sustained independent frame loss: the
// cost of loss appears as repair traffic and latency, never as missing
// deliveries. Reported extras: retransmits/op and NACKs/op from the
// sublayer's own counters. (No "Fanout" in the name: lossy rows cannot
// promise zero allocations, so it stays off the bench-smoke gate; the
// bench-loss target publishes it as BENCH_loss.json.)
func BenchmarkReliableLossSweep(b *testing.B) {
	const n = 4
	for _, drop := range []float64{0, 0.1, 0.2, 0.3} {
		b.Run(fmt.Sprintf("drop=%.2f", drop), func(b *testing.B) {
			ids := make([]string, n)
			for i := range ids {
				ids[i] = fmt.Sprintf("m%02d", i)
			}
			grp := group.MustNew("losssweep", ids)
			reg := telemetry.NewRegistry()
			net := transport.NewChanNetObserved(transport.FaultModel{DropProb: drop, Seed: 11}, reg)
			defer func() { _ = net.Close() }()
			var delivered atomic.Uint64
			engines := make([]*causal.OSend, 0, n)
			for _, id := range ids {
				conn, err := net.Attach(id)
				if err != nil {
					b.Fatal(err)
				}
				rconn := reliable.Wrap(conn, grp.Others(id), reliable.Config{
					Window:       128,
					AckEvery:     8,
					Tick:         time.Millisecond,
					StallTimeout: time.Hour,
					ShedAfter:    time.Hour,
					Seed:         11,
					Telemetry:    reg,
				})
				eng, err := causal.NewOSend(causal.OSendConfig{
					Self: id, Group: grp, Conn: rconn,
					Deliver:   func(message.Message) { delivered.Add(1) },
					Telemetry: reg,
				})
				if err != nil {
					b.Fatal(err)
				}
				engines = append(engines, eng)
			}
			defer func() {
				for _, e := range engines {
					_ = e.Close()
				}
			}()
			lab := message.NewLabeler(ids[0])
			before := reg.Snapshot()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := message.Message{Label: lab.Next(), Kind: message.KindCommutative, Op: "inc"}
				if err := engines[0].Broadcast(m); err != nil {
					b.Fatal(err)
				}
			}
			target := uint64(n) * uint64(b.N)
			for delivered.Load() < target {
				time.Sleep(20 * time.Microsecond)
			}
			b.StopTimer()
			after := reg.Snapshot()
			ops := float64(b.N)
			b.ReportMetric(float64(after.Get("reliable_retransmits_total")-before.Get("reliable_retransmits_total"))/ops, "retransmits/op")
			b.ReportMetric(float64(after.Get("reliable_nacks_sent_total")-before.Get("reliable_nacks_sent_total"))/ops, "nacks/op")
		})
	}
}

func BenchmarkVectorClockCompare(b *testing.B) {
	x, y := vclock.New(), vclock.New()
	for i := 0; i < 16; i++ {
		id := fmt.Sprintf("m%02d", i)
		x.Set(id, uint64(i))
		y.Set(id, uint64(16-i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Compare(y)
	}
}

func BenchmarkMessageCodec(b *testing.B) {
	m := message.Message{
		Label: message.Label{Origin: "node-07~cli", Seq: 123456},
		Deps: message.After(
			message.Label{Origin: "node-01~cli", Seq: 42},
			message.Label{Origin: "node-02~cli", Seq: 57},
		),
		Kind: message.KindCommutative,
		Op:   "inc",
		Body: []byte("payload-bytes"),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := m.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		var got message.Message
		if err := got.UnmarshalBinary(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraphTopoSort(b *testing.B) {
	g := graph.New()
	var prevCycle []message.Label
	for c := 0; c < 50; c++ {
		closer := message.Label{Origin: "nc", Seq: uint64(c + 1)}
		var body []message.Label
		for k := 0; k < 10; k++ {
			l := message.Label{Origin: fmt.Sprintf("c%d", k), Seq: uint64(c + 1)}
			deps := prevCycle
			if err := g.AddEdges(l, deps); err != nil {
				b.Fatal(err)
			}
			body = append(body, l)
		}
		if err := g.AddEdges(closer, body); err != nil {
			b.Fatal(err)
		}
		prevCycle = []message.Label{closer}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.TopoSort(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOSendDeliveryRuleSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.New(int64(i) + 1)
		net := sim.NewNet(s, sim.NetModel{MaxLatency: sim.Duration(2 * time.Millisecond)})
		cluster := sim.NewCausalCluster(s, net, sim.RuleOSend, 5, nil)
		fe, err := core.NewComposer("bench~cli")
		if err != nil {
			b.Fatal(err)
		}
		for k := 0; k < 200; k++ {
			kind := message.KindCommutative
			op := "inc"
			if k%10 == 9 {
				kind = message.KindNonCommutative
				op = "set"
			}
			m, err := fe.Compose(op, kind, nil)
			if err != nil {
				b.Fatal(err)
			}
			k := k
			s.At(sim.Time(k)*sim.Duration(100*time.Microsecond), func() {
				cluster.Broadcast(k%5, m)
			})
		}
		s.Run(0)
	}
}

func BenchmarkReplicaDeliver(b *testing.B) {
	rep, err := core.NewReplica(core.ReplicaConfig{
		Self: "r", Initial: shareddata.NewCounter(0), Apply: shareddata.ApplyCounter,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kind := message.KindCommutative
		op := "inc"
		if i%20 == 19 {
			kind = message.KindNonCommutative
			op = "set"
		}
		rep.Deliver(message.Message{
			Label: message.Label{Origin: "x", Seq: uint64(i + 1)},
			Kind:  kind,
			Op:    op,
		})
	}
}
